package rforktest

import (
	"errors"
	"testing"

	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/rfork"

	icluster "cxlfork/internal/cluster"
)

// faultyMechs builds each mechanism wired to the cluster's fault plan.
func faultyMechs(c *icluster.Cluster) map[string]rfork.Mechanism {
	coreMech := core.New(c.Dev)
	coreMech.Faults = c.Faults
	criuMech := criu.New(c.CXLFS)
	criuMech.Faults = c.Faults
	mitMech := mitosis.New()
	mitMech.Faults = c.Faults
	return map[string]rfork.Mechanism{
		"CXLfork":     coreMech,
		"CRIU-CXL":    criuMech,
		"Mitosis-CXL": mitMech,
	}
}

// TestKillMidCheckpointRecovery is the acceptance scenario for torn
// checkpoints: node 0 crashes between the page-table stage and the
// global-state seal, leaving a staged (unsealed) arena on the device.
// Device.Recover reclaims 100% of it, and a retried checkpoint+restore
// on the surviving node succeeds. The whole scenario is deterministic:
// the same seed yields identical virtual-time results.
func TestKillMidCheckpointRecovery(t *testing.T) {
	run := func(seed int64) des.Time {
		c := NewCluster(t)
		c.Faults.Reseed(seed)
		mech := core.New(c.Dev)
		mech.Faults = c.Faults

		parent := BuildParent(t, c)
		baseline := c.Dev.UsedBytes()
		before := c.Eng.Now()

		// Crash node 0 after its PT stage, right before the publication
		// commit.
		c.Faults.Inject(faultinject.Rule{
			Kind: faultinject.CrashNode,
			Step: faultinject.StepCheckpointGlobal,
			Node: 0,
		})
		_, err := mech.Checkpoint(parent, "doomed")
		if !errors.Is(err, rfork.ErrNodeDown) {
			t.Fatalf("checkpoint on crashing node: got %v, want ErrNodeDown", err)
		}
		if !c.Faults.NodeDown(0) {
			t.Fatal("node 0 not marked down after injected crash")
		}
		// The copy work before the crash really happened: virtual time
		// advanced and the torn arena still occupies the device.
		if c.Eng.Now() <= before {
			t.Fatal("crash charged no virtual time for work done before it")
		}
		torn := c.Dev.UsedBytes() - baseline
		if torn <= 0 {
			t.Fatal("crash left no torn state on the device")
		}
		CheckInvariants(t, c) // torn arena still owns its frames

		// Garbage-collect the unsealed arena: 100% reclaimed.
		st := c.Dev.Recover()
		if st.Arenas != 1 {
			t.Fatalf("Recover found %d arenas, want 1", st.Arenas)
		}
		if st.Total() != torn {
			t.Fatalf("Recover reclaimed %d bytes of %d torn", st.Total(), torn)
		}
		if got := c.Dev.UsedBytes(); got != baseline {
			t.Fatalf("device at %d bytes after Recover, baseline %d", got, baseline)
		}

		// Retry on the surviving node: checkpoint and restore succeed and
		// the clone's content is intact.
		parent2 := BuildParentOn(t, c, 1)
		snap := SnapshotTokens(parent2)
		img, err := mech.Checkpoint(parent2, "retry")
		if err != nil {
			t.Fatalf("retried checkpoint on surviving node: %v", err)
		}
		child := c.Node(1).NewTask("clone")
		if err := mech.Restore(child, img, rfork.Options{}); err != nil {
			t.Fatalf("restore on surviving node: %v", err)
		}
		VerifyCloneContent(t, child, snap)
		CheckInvariants(t, c)
		return c.Eng.Now()
	}

	t1 := run(42)
	t2 := run(42)
	if t1 != t2 {
		t.Fatalf("same seed, different virtual time: %d vs %d", t1, t2)
	}
}

// TestDeviceFullRollbackAtEveryStage verifies that a transient
// device-full injected at each checkpoint stage rolls staging back so
// device occupancy is exactly unchanged, and that the very next attempt
// succeeds (the fault was transient).
func TestDeviceFullRollbackAtEveryStage(t *testing.T) {
	steps := []string{
		faultinject.StepCheckpointVMA,
		faultinject.StepCheckpointPT,
		faultinject.StepCheckpointGlobal,
	}
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			c := NewCluster(t)
			mech := core.New(c.Dev)
			mech.Faults = c.Faults
			parent := BuildParent(t, c)
			baseline := c.Dev.UsedBytes()
			before := c.Eng.Now()

			c.Faults.Inject(faultinject.Rule{
				Kind: faultinject.DeviceFull,
				Step: step,
				Node: 0,
			})
			_, err := mech.Checkpoint(parent, "wontfit")
			if !errors.Is(err, cxl.ErrDeviceFull) {
				t.Fatalf("got %v, want ErrDeviceFull", err)
			}
			if got := c.Dev.UsedBytes(); got != baseline {
				t.Fatalf("occupancy %d after rollback, want %d", got, baseline)
			}
			if c.Eng.Now() != before {
				t.Fatal("rolled-back checkpoint charged virtual time")
			}
			CheckInvariants(t, c)

			// The injection fired once; the retry goes through.
			img, err := mech.Checkpoint(parent, "retry")
			if err != nil {
				t.Fatalf("retry after transient fault: %v", err)
			}
			img.Release()
			if got := c.Dev.UsedBytes(); got != baseline {
				t.Fatalf("occupancy %d after release, want %d", got, baseline)
			}
			CheckInvariants(t, c)
		})
	}
}

// TestCorruptedImageRejected verifies every mechanism detects a
// bit-flipped checkpoint record via its checksummed envelope and fails
// restore with ErrImageCorrupt before touching the child.
func TestCorruptedImageRejected(t *testing.T) {
	for _, name := range []string{"CXLfork", "CRIU-CXL", "Mitosis-CXL"} {
		t.Run(name, func(t *testing.T) {
			c := NewCluster(t)
			mech := faultyMechs(c)[name]
			parent := BuildParent(t, c)
			c.Faults.Inject(faultinject.Rule{
				Kind:   faultinject.CorruptBlob,
				Step:   faultinject.StepCheckpointGlobal,
				Node:   faultinject.AnyNode,
				Target: "poisoned",
			})
			img, err := mech.Checkpoint(parent, "poisoned")
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			child := c.Node(1).NewTask("clone")
			err = mech.Restore(child, img, rfork.Options{})
			if !errors.Is(err, rfork.ErrImageCorrupt) {
				t.Fatalf("restore of corrupted image: got %v, want ErrImageCorrupt", err)
			}
			if n := child.MM.VMAs.Count(); n != 0 {
				t.Fatalf("failed restore left %d VMAs in the child", n)
			}
			CheckInvariants(t, c)
		})
	}
}

// TestFabricDegradeSlowsCheckpoint verifies a degradation window
// multiplies CXL transfer costs: the same checkpoint takes strictly
// longer in virtual time under an injected FabricDegrade.
func TestFabricDegradeSlowsCheckpoint(t *testing.T) {
	elapsed := func(degrade bool) des.Time {
		c := NewCluster(t)
		mech := core.New(c.Dev)
		mech.Faults = c.Faults
		if degrade {
			c.Faults.Inject(faultinject.Rule{
				Kind:   faultinject.FabricDegrade,
				Step:   faultinject.StepCheckpointPT,
				Node:   faultinject.AnyNode,
				Factor: 8,
				Window: des.Time(1) << 40,
			})
		}
		parent := BuildParent(t, c)
		start := c.Eng.Now()
		img, err := mech.Checkpoint(parent, "ck")
		if err != nil {
			t.Fatal(err)
		}
		img.Release()
		return c.Eng.Now() - start
	}
	slow, fast := elapsed(true), elapsed(false)
	if slow <= fast {
		t.Fatalf("degraded checkpoint took %d, undegraded %d", slow, fast)
	}
}

// TestDoubleReleaseIsNoOp is the regression test for the shared
// refcount helper: releasing an already-dead image must be a no-op for
// every mechanism, not a panic or a double free.
func TestDoubleReleaseIsNoOp(t *testing.T) {
	for _, name := range []string{"CXLfork", "CRIU-CXL", "Mitosis-CXL"} {
		t.Run(name, func(t *testing.T) {
			c := NewCluster(t)
			mech := faultyMechs(c)[name]
			parent := BuildParent(t, c)
			img, err := mech.Checkpoint(parent, "once")
			if err != nil {
				t.Fatal(err)
			}
			img.Release()
			if img.Refs() != 0 {
				t.Fatalf("refs = %d after release", img.Refs())
			}
			img.Release() // must not panic or double-free
			img.Release()
			if img.Refs() < 0 {
				t.Fatalf("refs went negative: %d", img.Refs())
			}
		})
	}
}

// TestRestoreOnDownNodeFails verifies the step-boundary check: any
// restore attempted on a crashed node fails with ErrNodeDown instead of
// running on a ghost.
func TestRestoreOnDownNodeFails(t *testing.T) {
	c := NewCluster(t)
	mech := core.New(c.Dev)
	mech.Faults = c.Faults
	parent := BuildParent(t, c)
	img, err := mech.Checkpoint(parent, "ck")
	if err != nil {
		t.Fatal(err)
	}
	c.Faults.CrashNode(1)
	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); !errors.Is(err, rfork.ErrNodeDown) {
		t.Fatalf("restore on down node: got %v, want ErrNodeDown", err)
	}
	// The sealed checkpoint survives the crash; node 0 restores fine.
	child0 := c.Node(0).NewTask("clone0")
	if err := mech.Restore(child0, img, rfork.Options{}); err != nil {
		t.Fatalf("restore on surviving node: %v", err)
	}
}

// TestMitosisParentCoupling verifies Mitosis' central constraint
// (paper §3.1): its image lives in the parent node's memory, so a
// restore after the parent node crashes fails with ErrNodeDown — while
// CXLfork's device-resident checkpoint survives the same crash.
func TestMitosisParentCoupling(t *testing.T) {
	c := NewCluster(t)
	mechs := faultyMechs(c)
	parent := BuildParent(t, c)

	mImg, err := mechs["Mitosis-CXL"].Checkpoint(parent, "m")
	if err != nil {
		t.Fatal(err)
	}
	cImg, err := mechs["CXLfork"].Checkpoint(parent, "c")
	if err != nil {
		t.Fatal(err)
	}

	c.Faults.CrashNode(0) // the parent node

	child := c.Node(1).NewTask("m-clone")
	if err := mechs["Mitosis-CXL"].Restore(child, mImg, rfork.Options{}); !errors.Is(err, rfork.ErrNodeDown) {
		t.Fatalf("Mitosis restore with dead parent: got %v, want ErrNodeDown", err)
	}
	child2 := c.Node(1).NewTask("c-clone")
	if err := mechs["CXLfork"].Restore(child2, cImg, rfork.Options{}); err != nil {
		t.Fatalf("CXLfork restore after parent crash: %v", err)
	}
}
