package cxl

import "cxlfork/internal/memsim"

// Per-image exclusive vs. shared frame accounting.
//
// The content-addressed dedup index (dedup.go) lets several checkpoint
// arenas reference the same data frame, so an image's declared footprint
// (frames tracked × page size) is not what the device gets back when the
// image is released: shared frames merely drop a reference and stay
// resident for their other owners. The capacity manager's eviction
// targets must be truthful, so the split is computed here from the frame
// refcounts themselves: a frame is exclusive to an arena exactly when
// every live reference on it is held by that arena, and only exclusive
// frames (plus the arena's metadata) come back on Release.

// Occupancy is one arena's byte breakdown on the device.
type Occupancy struct {
	// Meta is arena metadata: checkpointed OS structures (page-table
	// leaves, VMA leaves, serialized global state). Always exclusive.
	Meta int64
	// ExclusiveFrames is bytes of distinct data frames referenced only by
	// this arena — the frame capacity releasing the arena frees.
	ExclusiveFrames int64
	// SharedFrames is bytes of distinct data frames this arena shares
	// with other live owners (dedup twins); releasing the arena only
	// drops references on them.
	SharedFrames int64
}

// Reclaimable is the device occupancy delta releasing the arena would
// produce right now: metadata plus exclusive frames.
func (o Occupancy) Reclaimable() int64 { return o.Meta + o.ExclusiveFrames }

// Total is the arena's distinct device footprint: metadata plus every
// distinct frame it references, shared or not. It can exceed
// Reclaimable when frames are dedup-shared.
func (o Occupancy) Total() int64 { return o.Meta + o.ExclusiveFrames + o.SharedFrames }

// Occupancy computes the arena's exclusive/shared byte breakdown. A
// frame tracked several times by the same arena (one image mapping the
// same content at several addresses) counts once; it is exclusive when
// the arena holds all of its references. A released arena reports zero.
func (a *Arena) Occupancy() Occupancy {
	if a.closed {
		return Occupancy{}
	}
	o := Occupancy{Meta: a.bytes}
	held := make(map[*memsim.Frame]int, len(a.frames))
	for _, f := range a.frames {
		held[f]++
	}
	ps := int64(a.dev.p.PageSize)
	for f, n := range held {
		if f.Refs() == n {
			o.ExclusiveFrames += ps
		} else {
			o.SharedFrames += ps
		}
	}
	return o
}

// ExclusiveBytes returns the bytes releasing the arena would actually
// free right now: metadata plus frames no other owner references.
func (a *Arena) ExclusiveBytes() int64 { return a.Occupancy().Reclaimable() }

// SharedBytes returns bytes of distinct frames this arena shares with
// other live owners.
func (a *Arena) SharedBytes() int64 { return a.Occupancy().SharedFrames }

// DeviceOccupancy aggregates arena occupancy across the whole device.
type DeviceOccupancy struct {
	// Arenas is the number of live checkpoint arenas.
	Arenas int
	// Meta is total arena metadata bytes.
	Meta int64
	// ExclusiveFrames sums per-arena exclusive frame bytes: capacity that
	// would come back if its single owner were released.
	ExclusiveFrames int64
	// SharedFrames is bytes of distinct frames referenced by more than
	// one owner, each counted once device-wide.
	SharedFrames int64
}

// Total is the device capacity the live arenas account for. It equals
// Device.UsedBytes when every pool frame is arena-owned (the invariant
// the test harness enforces).
func (o DeviceOccupancy) Total() int64 { return o.Meta + o.ExclusiveFrames + o.SharedFrames }

// Occupancy summarizes the device's live arenas: how much of the
// occupied capacity each image could give back versus how much is
// dedup-shared. For workloads whose device frames are all arena-owned
// (the invariant the test harness enforces), Meta + ExclusiveFrames +
// SharedFrames equals UsedBytes.
func (d *Device) Occupancy() DeviceOccupancy {
	var out DeviceOccupancy
	shared := make(map[*memsim.Frame]bool)
	ps := int64(d.p.PageSize)
	d.ForEachArena(func(a *Arena) {
		out.Arenas++
		out.Meta += a.bytes
		held := make(map[*memsim.Frame]int, len(a.frames))
		for _, f := range a.frames {
			held[f]++
		}
		for f, n := range held {
			if f.Refs() == n {
				out.ExclusiveFrames += ps
			} else {
				shared[f] = true
			}
		}
	})
	out.SharedFrames = int64(len(shared)) * ps
	return out
}
