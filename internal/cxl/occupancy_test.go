package cxl

import "testing"

// TestOccupancyExclusiveShared builds two arenas that dedup-share one
// frame and checks the exclusive/shared split and that Reclaimable
// predicts the true release delta.
func TestOccupancyExclusiveShared(t *testing.T) {
	d := dev(t)
	pageSize := int64(d.p.PageSize)

	a, _ := d.NewArena("a")
	b, _ := d.NewArena("b")
	a.MustAlloc("meta-a", 100)
	b.MustAlloc("meta-b", 50)

	// Frame 1: exclusive to a. Frame 2: shared between a and b.
	f1, _, err := d.AllocToken(0x1111)
	if err != nil {
		t.Fatal(err)
	}
	a.TrackFrame(f1)
	f2, hit, err := d.AllocToken(0x2222)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("fresh token hit the index")
	}
	a.TrackFrame(f2)
	f2b, hit, err := d.AllocToken(0x2222)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || f2b != f2 {
		t.Fatal("identical token did not dedup")
	}
	b.TrackFrame(f2b)

	ao := a.Occupancy()
	if ao.Meta != 100 || ao.ExclusiveFrames != pageSize || ao.SharedFrames != pageSize {
		t.Fatalf("arena a occupancy = %+v", ao)
	}
	if got := a.ExclusiveBytes(); got != 100+pageSize {
		t.Fatalf("a.ExclusiveBytes = %d", got)
	}
	bo := b.Occupancy()
	if bo.Meta != 50 || bo.ExclusiveFrames != 0 || bo.SharedFrames != pageSize {
		t.Fatalf("arena b occupancy = %+v", bo)
	}

	do := d.Occupancy()
	if do.Arenas != 2 || do.Meta != 150 {
		t.Fatalf("device occupancy = %+v", do)
	}
	// The shared frame counts once device-wide.
	if do.ExclusiveFrames != pageSize || do.SharedFrames != pageSize {
		t.Fatalf("device frame split = %+v", do)
	}
	if do.Total() != d.UsedBytes() {
		t.Fatalf("occupancy total %d != used %d", do.Total(), d.UsedBytes())
	}

	// Releasing a frees exactly its reclaimable estimate, and promotes
	// the shared frame to exclusive in b.
	predicted := a.ExclusiveBytes()
	before := d.UsedBytes()
	a.Release()
	if delta := before - d.UsedBytes(); delta != predicted {
		t.Fatalf("release freed %d, predicted %d", delta, predicted)
	}
	bo = b.Occupancy()
	if bo.ExclusiveFrames != pageSize || bo.SharedFrames != 0 {
		t.Fatalf("arena b after promotion = %+v", bo)
	}

	predicted = b.ExclusiveBytes()
	before = d.UsedBytes()
	b.Release()
	if delta := before - d.UsedBytes(); delta != predicted {
		t.Fatalf("final release freed %d, predicted %d", delta, predicted)
	}
	if d.UsedBytes() != 0 {
		t.Fatalf("device not empty: %d", d.UsedBytes())
	}
}

// TestOccupancyClosedArena checks released arenas report zero.
func TestOccupancyClosedArena(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("a")
	a.MustAlloc("m", 64)
	a.Release()
	if o := a.Occupancy(); o != (Occupancy{}) {
		t.Fatalf("closed arena occupancy = %+v", o)
	}
}

// TestAllocTokenRebuild replays a token list through the dedup index
// after the original arena died — the capacity manager's re-publish
// path — and checks surviving twins are reused.
func TestAllocTokenRebuild(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("orig")
	tokens := []uint64{1, 2, 3, 4}
	for _, tok := range tokens {
		f, _, err := d.AllocToken(tok)
		if err != nil {
			t.Fatal(err)
		}
		a.TrackFrame(f)
	}
	// A twin keeps tokens 1 and 2 alive after orig is evicted.
	twin, _ := d.NewArena("twin")
	for _, tok := range tokens[:2] {
		f, hit, _ := d.AllocToken(tok)
		if !hit {
			t.Fatalf("token %d not deduped into twin", tok)
		}
		twin.TrackFrame(f)
	}
	a.Release()

	hitsBefore := d.Dedup.Hits.Value()
	replay, _ := d.NewArena("replay")
	for _, tok := range tokens {
		f, _, err := d.AllocToken(tok)
		if err != nil {
			t.Fatal(err)
		}
		replay.TrackFrame(f)
	}
	if hits := d.Dedup.Hits.Value() - hitsBefore; hits != 2 {
		t.Fatalf("replay dedup hits = %d, want 2 (surviving twins)", hits)
	}
	if replay.FrameBytes() != int64(len(tokens))*int64(d.p.PageSize) {
		t.Fatalf("replay frame bytes = %d", replay.FrameBytes())
	}
}
