package cxl

import (
	"errors"
	"testing"

	"cxlfork/internal/params"
)

func poolOf(t *testing.T, n int) *DevicePool {
	t.Helper()
	p := params.Default()
	p.CXLBytes = 3 << 20 // 768 pages total
	return NewDevicePool(p, n)
}

func TestPoolOfOneIsTheSingleDevice(t *testing.T) {
	p := params.Default()
	p.CXLBytes = 1 << 20
	pool := NewDevicePool(p, 1)
	single := NewDevice(p)
	if pool.N() != 1 {
		t.Fatalf("N = %d", pool.N())
	}
	d := pool.Device(0)
	if d.CapacityBytes() != single.CapacityBytes() {
		t.Fatalf("capacity %d != single-device %d", d.CapacityBytes(), single.CapacityBytes())
	}
	if d.Name() != "cxl" || d.Index() != 0 {
		t.Fatalf("device 0 identity = %q/%d, want cxl/0", d.Name(), d.Index())
	}
	if NewDevicePool(p, 0).N() != 1 {
		t.Fatal("n<=0 should clamp to 1")
	}
}

func TestPoolSplitsCapacityPageAligned(t *testing.T) {
	pool := poolOf(t, 3)
	ps := int64(params.Default().PageSize)
	var total int64
	for i := 0; i < pool.N(); i++ {
		c := pool.Device(i).CapacityBytes()
		if c%ps != 0 {
			t.Fatalf("device %d capacity %d not page-aligned", i, c)
		}
		total += c
	}
	// Device 0 keeps the historical single-device name so its telemetry
	// series stay stable; later devices are numbered.
	if pool.Device(0).Name() != "cxl" || pool.Device(1).Name() != "cxl1" {
		t.Fatalf("device names = %q,%q", pool.Device(0).Name(), pool.Device(1).Name())
	}
	if total < 3<<20 {
		t.Fatalf("split lost capacity: %d < %d", total, 3<<20)
	}
	if pool.CapacityBytes() != total {
		t.Fatalf("CapacityBytes = %d, want %d", pool.CapacityBytes(), total)
	}
}

func TestFailedDeviceRejectsAllocations(t *testing.T) {
	pool := poolOf(t, 2)
	d := pool.Device(1)
	a, err := d.NewArena("pre")
	if err != nil {
		t.Fatal(err)
	}
	a.MustAlloc("x", 64)
	if err := a.Seal(); err != nil {
		t.Fatal(err)
	}

	pool.Fail(1)
	if !pool.Failed(1) || pool.Healthy() != 1 {
		t.Fatalf("failed=%v healthy=%d", pool.Failed(1), pool.Healthy())
	}
	if _, err := d.NewArena("post"); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("NewArena on dead device: %v", err)
	}
	if _, _, err := d.AllocToken(42); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("AllocToken on dead device: %v", err)
	}
}

func TestPoolAggregatesSkipDeadDevices(t *testing.T) {
	pool := poolOf(t, 3)
	for i := 0; i < 3; i++ {
		a, err := pool.Device(i).NewArena("fill")
		if err != nil {
			t.Fatal(err)
		}
		a.MustAlloc("blob", 4096)
		if err := a.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	used, cap3 := pool.UsedBytes(), pool.CapacityBytes()
	pool.Fail(2)
	if pool.UsedBytes() >= used {
		t.Fatalf("used %d should drop after loss (was %d)", pool.UsedBytes(), used)
	}
	if pool.CapacityBytes() >= cap3 {
		t.Fatalf("capacity %d should drop after loss (was %d)", pool.CapacityBytes(), cap3)
	}
	if pool.MaxUtilization() <= 0 {
		t.Fatal("max utilization should reflect surviving devices")
	}
	n := 0
	pool.ForEachHealthy(func(*Device) { n++ })
	if n != 2 {
		t.Fatalf("ForEachHealthy visited %d, want 2", n)
	}
}

func TestAllDeadPoolReportsFullUtilization(t *testing.T) {
	pool := poolOf(t, 2)
	pool.Fail(0)
	pool.Fail(1)
	if u := pool.Utilization(); u != 1 {
		t.Fatalf("all-dead utilization = %v, want 1", u)
	}
	if pool.Healthy() != 0 {
		t.Fatalf("healthy = %d", pool.Healthy())
	}
}
