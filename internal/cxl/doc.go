// Package cxl models the shared CXL memory device and fabric.
//
// The device exposes two things to the rest of the system:
//
//   - a shared physical frame pool (memsim.Pool of kind CXL) holding
//     checkpointed process data pages, and
//   - per-checkpoint Arenas holding checkpointed OS structures (page
//     table nodes, VMA records, serialized global state), addressed by
//     machine-independent Offsets rather than pointers.
//
// The Offset indirection is the heart of CXLfork's "rebase" step
// (paper §4.1): after copying OS structures into CXL memory, every
// internal pointer is rewritten into an offset on the device, so that
// any OS instance on the fabric can map the arena at a different
// virtual/physical base and still dereference the structures. In this
// simulation, the only way to follow a rebased reference is through
// Arena.Get, which makes an un-rebased (dangling) pointer a loud test
// failure instead of silent corruption.
//
// Entry points: NewDevice sizes the device from params; Device.NewArena
// opens a checkpoint arena, and Arena.Get is the only way to follow a
// rebased Offset. occupancy.go adds the dedup-aware exclusive/shared
// frame accounting the capacity manager bills evictions with (DESIGN.md
// §10).
package cxl
