package cxl

import (
	"cxlfork/internal/des"
	"cxlfork/internal/telemetry"
)

// RegisterTelemetry registers the device's gauges and counters against
// reg. Occupancy is O(arenas × frames) to compute, so the exclusive
// and shared probes share one walk memoized per sample instant.
func (d *Device) RegisterTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	var (
		occAt des.Time = -1
		occ   DeviceOccupancy
	)
	occupancy := func(now des.Time) DeviceOccupancy {
		if now != occAt {
			occ = d.Occupancy()
			occAt = now
		}
		return occ
	}
	reg.Gauge("cxl_used_bytes", "bytes allocated on the shared CXL device (data plus metadata)",
		func(des.Time) float64 { return float64(d.UsedBytes()) })
	reg.Gauge("cxl_meta_bytes", "bytes of checkpoint metadata resident on the device",
		func(des.Time) float64 { return float64(d.MetaBytes()) })
	reg.Gauge("cxl_utilization", "device occupancy as a fraction of capacity",
		func(des.Time) float64 { return d.Utilization() })
	reg.Gauge("cxl_arenas", "sealed plus staged checkpoint arenas resident on the device",
		func(des.Time) float64 { return float64(d.Arenas()) })
	reg.Gauge("cxl_exclusive_bytes", "frame bytes referenced by exactly one checkpoint",
		func(now des.Time) float64 { return float64(occupancy(now).ExclusiveFrames) })
	reg.Gauge("cxl_shared_bytes", "frame bytes shared by two or more checkpoints via dedup",
		func(now des.Time) float64 { return float64(occupancy(now).SharedFrames) })
	reg.Gauge("cxl_dedup_index", "live entries in the content-addressed frame index",
		func(des.Time) float64 { return float64(d.DedupIndexLen()) })
	reg.Gauge("cxl_dedup_hit_rate", "fraction of frame allocations served by an existing frame",
		func(des.Time) float64 { return d.Dedup.HitRate() })
	reg.CounterFunc("cxl_dedup_hits_total", "frame allocations deduplicated against a resident frame",
		func(des.Time) float64 { return float64(d.Dedup.Hits.Value()) })
	reg.CounterFunc("cxl_dedup_misses_total", "frame allocations that stored a new frame",
		func(des.Time) float64 { return float64(d.Dedup.Misses.Value()) })
	reg.CounterFunc("cxl_dedup_bytes_saved_total", "device bytes avoided by frame dedup",
		func(des.Time) float64 { return float64(d.Dedup.BytesSaved.Value()) })
	reg.CounterFunc("cxl_read_bytes_total", "bytes read from the device over the fabric",
		func(des.Time) float64 { return float64(d.ReadBytes) })
	reg.CounterFunc("cxl_write_bytes_total", "bytes written to the device over the fabric",
		func(des.Time) float64 { return float64(d.WriteBytes) })
}
