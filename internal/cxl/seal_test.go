package cxl

import (
	"testing"
)

func TestArenaTwoPhaseCommit(t *testing.T) {
	d := dev(t)
	a, err := d.NewArena("ck")
	if err != nil {
		t.Fatal(err)
	}
	if a.Sealed() {
		t.Fatal("new arena born sealed")
	}
	if _, err := a.Alloc("staged", 64); err != nil {
		t.Fatal(err)
	}
	if err := a.Seal(); err != nil {
		t.Fatal(err)
	}
	if !a.Sealed() {
		t.Fatal("Seal did not seal")
	}
	// Sealed arenas are immutable.
	if _, err := a.Alloc("late", 64); err == nil {
		t.Fatal("Alloc succeeded on a sealed arena")
	}
	// Reads still work — restore walks sealed arenas.
	if got := Get[string](a, 1); got != "staged" {
		t.Fatalf("Get = %q", got)
	}
	a.Release()
	if err := a.Seal(); err == nil {
		t.Fatal("Seal succeeded on a released arena")
	}
}

func TestArenaOwnsFrames(t *testing.T) {
	d := dev(t)
	a, err := d.NewArena("ck")
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.Pool().Alloc()
	if err != nil {
		t.Fatal(err)
	}
	a.TrackFrame(f)
	if a.FrameBytes() != int64(d.p.PageSize) {
		t.Fatalf("FrameBytes = %d", a.FrameBytes())
	}
	if d.Pool().UsedPages() != 1 {
		t.Fatalf("pool used = %d", d.Pool().UsedPages())
	}
	a.Release()
	if d.Pool().UsedPages() != 0 {
		t.Fatal("Release did not return tracked frames")
	}
	// Double release must not double-free the frames.
	a.Release()
	if d.UsedBytes() != 0 {
		t.Fatalf("device used = %d after release", d.UsedBytes())
	}
}

func TestRecoverCollectsOnlyTornArenas(t *testing.T) {
	d := dev(t)

	sealed, _ := d.NewArena("a-sealed")
	sealed.MustAlloc("x", 128)
	f, _ := d.Pool().Alloc()
	sealed.TrackFrame(f)
	if err := sealed.Seal(); err != nil {
		t.Fatal(err)
	}

	torn1, _ := d.NewArena("b-torn")
	torn1.MustAlloc("y", 100)
	tf, _ := d.Pool().Alloc()
	torn1.TrackFrame(tf)

	torn2, _ := d.NewArena("c-torn")
	torn2.MustAlloc("z", 50)

	used := d.UsedBytes()
	st := d.Recover()
	if st.Arenas != 2 {
		t.Fatalf("recovered %d arenas, want 2", st.Arenas)
	}
	wantMeta := int64(100 + 50)
	wantFrames := int64(d.p.PageSize)
	if st.MetaBytes != wantMeta || st.FrameBytes != wantFrames {
		t.Fatalf("recovered meta=%d frames=%d, want %d/%d",
			st.MetaBytes, st.FrameBytes, wantMeta, wantFrames)
	}
	if got := d.UsedBytes(); got != used-st.Total() {
		t.Fatalf("device used %d after recover, want %d", got, used-st.Total())
	}
	if !torn1.Closed() || !torn2.Closed() {
		t.Fatal("torn arenas not released")
	}
	if sealed.Closed() {
		t.Fatal("Recover released a sealed arena")
	}
	if d.Arena("a-sealed") == nil {
		t.Fatal("sealed arena deregistered")
	}
	// A second pass finds nothing.
	if st := d.Recover(); st.Arenas != 0 || st.Total() != 0 {
		t.Fatalf("second recover pass reclaimed %+v", st)
	}
}
