package cxl

import (
	"errors"
	"testing"

	"cxlfork/internal/params"
)

func dev(t *testing.T) *Device {
	t.Helper()
	p := params.Default()
	p.CXLBytes = 1 << 20 // 256 pages
	return NewDevice(p)
}

func TestDeviceGeometry(t *testing.T) {
	d := dev(t)
	if d.CapacityBytes() != 1<<20 {
		t.Fatalf("capacity = %d", d.CapacityBytes())
	}
	if d.Pool().CapacityPages() != 256 {
		t.Fatalf("pool pages = %d", d.Pool().CapacityPages())
	}
	if d.UsedBytes() != 0 {
		t.Fatalf("fresh device used = %d", d.UsedBytes())
	}
}

func TestArenaAllocGet(t *testing.T) {
	d := dev(t)
	a, err := d.NewArena("ck1")
	if err != nil {
		t.Fatal(err)
	}
	off := a.MustAlloc("hello", 128)
	if off == Nil {
		t.Fatal("nil offset")
	}
	if got := Get[string](a, off); got != "hello" {
		t.Fatalf("Get = %q", got)
	}
	if d.MetaBytes() != 128 {
		t.Fatalf("meta bytes = %d", d.MetaBytes())
	}
}

func TestArenaUniqueNames(t *testing.T) {
	d := dev(t)
	if _, err := d.NewArena("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewArena("x"); err == nil {
		t.Fatal("duplicate arena name accepted")
	}
}

func TestArenaRelease(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("ck")
	a.MustAlloc(1, 1000)
	a.Release()
	if d.MetaBytes() != 0 {
		t.Fatalf("meta bytes after release = %d", d.MetaBytes())
	}
	if d.Arena("ck") != nil {
		t.Fatal("released arena still registered")
	}
	// Name becomes reusable.
	if _, err := d.NewArena("ck"); err != nil {
		t.Fatalf("name not reusable: %v", err)
	}
	// Releasing twice is a no-op.
	a.Release()
}

func TestArenaCapacity(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("big")
	if _, err := a.Alloc(0, d.CapacityBytes()+1); !errors.Is(err, ErrDeviceFull) {
		t.Fatalf("err = %v, want ErrDeviceFull", err)
	}
}

func TestArenaCapacitySharedWithPool(t *testing.T) {
	d := dev(t)
	// Fill the frame pool completely.
	for d.Pool().FreePages() > 0 {
		d.Pool().MustAlloc()
	}
	a, _ := d.NewArena("meta")
	if _, err := a.Alloc(0, 10); !errors.Is(err, ErrDeviceFull) {
		t.Fatalf("arena alloc on full device: err = %v", err)
	}
}

func TestGetInvalidOffsetPanics(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("ck")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil offset")
		}
	}()
	a.Get(Nil)
}

func TestGetWrongTypePanics(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("ck")
	off := a.MustAlloc("str", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	Get[int](a, off)
}

func TestGetAfterReleasePanics(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("ck")
	off := a.MustAlloc("x", 8)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on use-after-release")
		}
	}()
	a.Get(off)
}

func TestAllocAfterReleaseFails(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("ck")
	a.Release()
	if _, err := a.Alloc(1, 1); err == nil {
		t.Fatal("alloc on released arena succeeded")
	}
}

func TestUtilizationCombinesPoolAndMeta(t *testing.T) {
	d := dev(t)
	d.Pool().MustAlloc() // 4096 bytes
	a, _ := d.NewArena("ck")
	a.MustAlloc(0, 4096)
	if got := d.UsedBytes(); got != 8192 {
		t.Fatalf("UsedBytes = %d, want 8192", got)
	}
	if d.Utilization() <= 0 {
		t.Fatal("utilization not positive")
	}
}

func TestOffsetsStableAcrossObjects(t *testing.T) {
	d := dev(t)
	a, _ := d.NewArena("ck")
	offs := make([]Offset, 50)
	for i := range offs {
		offs[i] = a.MustAlloc(i, 8)
	}
	for i, off := range offs {
		if got := Get[int](a, off); got != i {
			t.Fatalf("object %d via offset %d = %d", i, off, got)
		}
	}
	if a.Len() != 50 {
		t.Fatalf("Len = %d", a.Len())
	}
}
