package cxl

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/memsim"
)

// Content-addressed frame dedup cache.
//
// Serverless parents are overwhelmingly alike: every warm instance of a
// function holds the same library text, the same interpreter heap, and
// large runs of zeroed pages. Checkpointing each instance as if its
// pages were unique wastes both device capacity and fabric write
// bandwidth. The device therefore keeps an index from page-content hash
// (FNV-1a over the content token) to live frames already holding that
// content; a checkpoint page write that hits the index takes an extra
// reference on the existing frame instead of allocating and NT-storing
// a new one.
//
// Index entries are validated lazily on lookup: an entry is only usable
// while its frame is still live (refs > 0), still the same allocation
// (CacheKey embeds the per-allocation generation, so a freed-and-reused
// frame never aliases), and still holds the hashed content. Stale
// entries are dropped in place, so the index needs no teardown hooks in
// Arena.Release or Recover.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1aToken hashes the 8-byte page content token with FNV-1a.
func fnv1aToken(tok uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= (tok >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// dedupEntry records one indexed frame. key is the frame's CacheKey at
// registration time: if the frame has since been freed and reallocated,
// the key no longer matches and the entry is stale.
type dedupEntry struct {
	key   uint64
	token uint64
	frame *memsim.Frame
}

// DedupAlloc returns a device frame holding src's contents: either an
// existing live frame with identical content (hit — one extra reference
// is taken, no data moves on the fabric) or a freshly allocated copy
// (miss). The boolean reports a hit. The caller owns one reference
// either way and normally hands it to an Arena via TrackFrame.
func (d *Device) DedupAlloc(src *memsim.Frame) (*memsim.Frame, bool, error) {
	return d.AllocToken(src.Data)
}

// AllocToken is DedupAlloc addressed by content token instead of source
// frame: it returns a device frame holding tok, deduped against the
// index when an identical live frame exists. Checkpoint replays (the
// capacity manager's re-publish path) use it to rebuild an evicted
// image's frames from a recorded token list — re-deduping against any
// surviving twins — without a live parent address space to copy from.
func (d *Device) AllocToken(tok uint64) (*memsim.Frame, bool, error) {
	if d.failed {
		return nil, false, fmt.Errorf("%w: %s", ErrDeviceFailed, d.name)
	}
	h := fnv1aToken(tok)
	entries := d.dedup[h]
	live := entries[:0]
	var hit *memsim.Frame
	for _, e := range entries {
		if e.frame.Refs() <= 0 || e.frame.CacheKey() != e.key || e.frame.Data != e.token {
			continue // stale: frame freed, reused, or rewritten
		}
		live = append(live, e)
		if hit == nil && e.token == tok {
			hit = e.frame
		}
	}
	if hit != nil {
		d.dedup[h] = live
		d.Dedup.Hits.Inc()
		d.Dedup.BytesSaved.Add(int64(d.p.PageSize))
		return hit.Get(), true, nil
	}
	f, err := d.pool.Alloc()
	if err != nil {
		if len(live) != len(entries) {
			d.dedup[h] = live
		}
		return nil, false, err
	}
	f.Data = tok
	d.dedup[h] = append(live, dedupEntry{key: f.CacheKey(), token: f.Data, frame: f})
	d.Dedup.Misses.Inc()
	return f, false, nil
}

// DedupIndexLen reports the number of index buckets (diagnostics).
func (d *Device) DedupIndexLen() int { return len(d.dedup) }

// CopyMakespan computes the virtual duration of a lane-parallel copy
// pipeline whose unit copies contend on the device's fabric streams.
func (d *Device) CopyMakespan(lanes int, shards []des.Shard) des.Time {
	return des.Makespan(lanes, d.p.FabricStreams, d.p.LaneDispatch, shards)
}

// CopyMakespanObs is CopyMakespan with a shard observer (see
// des.ShardObserver); a nil observer is byte-identical to CopyMakespan.
func (d *Device) CopyMakespanObs(lanes int, shards []des.Shard, obs des.ShardObserver) des.Time {
	return des.MakespanObs(lanes, d.p.FabricStreams, d.p.LaneDispatch, shards, obs)
}
