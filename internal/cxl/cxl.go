package cxl

import (
	"errors"
	"fmt"
	"sort"

	"cxlfork/internal/memsim"
	"cxlfork/internal/metrics"
	"cxlfork/internal/params"
)

// Offset is a machine-independent reference into a checkpoint arena.
// The zero Offset is nil.
type Offset uint64

// Nil is the null arena offset.
const Nil Offset = 0

// ErrDeviceFull is returned when the device cannot hold more data.
var ErrDeviceFull = errors.New("cxl: device full")

// ErrDeviceFailed is returned when an operation touches a device that a
// DeviceLoss fault has permanently failed. Unlike node crashes, device
// loss is not transient: the data is gone and only the replica layer
// can recover it.
var ErrDeviceFailed = errors.New("cxl: device failed")

// Device is one CXL memory device shared by all nodes on the fabric.
type Device struct {
	p        params.Params
	pool     *memsim.Pool
	index    int
	name     string
	capacity int64
	failed   bool

	arenas    map[string]*Arena
	metaBytes int64

	// dedup is the content-addressed frame index (see dedup.go).
	dedup map[uint64][]dedupEntry
	// Dedup counts frame-dedup hits, misses, and fabric bytes saved.
	Dedup metrics.DedupCounters

	// Fabric traffic counters (bytes), for bandwidth analyses.
	ReadBytes  int64
	WriteBytes int64
}

// NewDevice creates a device with capacity p.CXLBytes.
func NewDevice(p params.Params) *Device {
	return NewDeviceSized(p, 0, p.CXLBytes)
}

// NewDeviceSized creates device number index of a pool with the given
// capacity. Device 0 keeps the historical pool name "cxl" so
// single-device telemetry and traces are unchanged.
func NewDeviceSized(p params.Params, index int, capacity int64) *Device {
	name := "cxl"
	if index > 0 {
		name = fmt.Sprintf("cxl%d", index)
	}
	return &Device{
		p:        p,
		pool:     memsim.NewPool(name, memsim.CXL, capacity, p.PageSize),
		index:    index,
		name:     name,
		capacity: capacity,
		arenas:   make(map[string]*Arena),
		dedup:    make(map[uint64][]dedupEntry),
	}
}

// Pool returns the device's shared frame pool.
func (d *Device) Pool() *memsim.Pool { return d.pool }

// Index returns the device's position in its pool (0 for a standalone
// device).
func (d *Device) Index() int { return d.index }

// Name returns the device name ("cxl" for device 0, "cxlN" otherwise).
func (d *Device) Name() string { return d.name }

// Fail marks the device permanently failed: every arena and frame on it
// is unrecoverable, and all further allocation or restore attempts
// return ErrDeviceFailed. Occupancy accounting is left in place — a
// dead expander does not give its capacity back.
func (d *Device) Fail() { d.failed = true }

// Failed reports whether the device has been lost.
func (d *Device) Failed() bool { return d.failed }

// UsedBytes returns total device occupancy: data frames plus arena
// metadata.
func (d *Device) UsedBytes() int64 { return d.pool.UsedBytes() + d.metaBytes }

// CapacityBytes returns the device capacity.
func (d *Device) CapacityBytes() int64 { return d.capacity }

// Utilization returns occupancy in [0,1].
func (d *Device) Utilization() float64 {
	return float64(d.UsedBytes()) / float64(d.CapacityBytes())
}

// MetaBytes returns bytes consumed by arena metadata (checkpointed OS
// structures, as opposed to data pages).
func (d *Device) MetaBytes() int64 { return d.metaBytes }

// NewArena creates a named checkpoint arena on the device. Names must be
// unique among live arenas (checkpoint IDs provide this).
func (d *Device) NewArena(name string) (*Arena, error) {
	if d.failed {
		return nil, fmt.Errorf("%w: %s", ErrDeviceFailed, d.name)
	}
	if _, ok := d.arenas[name]; ok {
		return nil, fmt.Errorf("cxl: arena %q already exists", name)
	}
	a := &Arena{dev: d, name: name, objs: make([]arenaObj, 1)} // objs[0] = nil sentinel
	d.arenas[name] = a
	return a, nil
}

// Arena returns the named arena, or nil.
func (d *Device) Arena(name string) *Arena { return d.arenas[name] }

// Arenas returns the number of live arenas.
func (d *Device) Arenas() int { return len(d.arenas) }

// ForEachArena visits every live arena in name order (deterministic),
// for audits and invariant checkers.
func (d *Device) ForEachArena(fn func(*Arena)) {
	names := make([]string, 0, len(d.arenas))
	for name := range d.arenas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn(d.arenas[name])
	}
}

// RecoverStats reports what a Device.Recover pass reclaimed.
type RecoverStats struct {
	// Arenas is the number of torn (unsealed) arenas garbage-collected.
	Arenas int
	// MetaBytes is the arena metadata reclaimed.
	MetaBytes int64
	// FrameBytes is the data-frame capacity reclaimed.
	FrameBytes int64
}

// Total returns all bytes reclaimed.
func (s RecoverStats) Total() int64 { return s.MetaBytes + s.FrameBytes }

// Recover garbage-collects every unsealed arena on the device: the
// debris of checkpoints whose publishing node died before the seal.
// Sealed arenas are untouched. Iteration is name-sorted so a recovery
// pass is deterministic regardless of map order.
func (d *Device) Recover() RecoverStats {
	var torn []*Arena
	for _, a := range d.arenas {
		if !a.sealed {
			torn = append(torn, a)
		}
	}
	sort.Slice(torn, func(i, j int) bool { return torn[i].name < torn[j].name })
	var st RecoverStats
	for _, a := range torn {
		st.Arenas++
		st.MetaBytes += a.bytes
		st.FrameBytes += a.FrameBytes()
		a.Release()
	}
	return st
}

// charge reserves metadata bytes on the device.
func (d *Device) charge(n int64) error {
	if d.failed {
		return fmt.Errorf("%w: %s", ErrDeviceFailed, d.name)
	}
	if d.UsedBytes()+n > d.CapacityBytes() {
		return fmt.Errorf("%w: need %d more bytes, used %d of %d",
			ErrDeviceFull, n, d.UsedBytes(), d.CapacityBytes())
	}
	d.metaBytes += n
	return nil
}

type arenaObj struct {
	v    any
	size int64
}

// Arena is an offset-addressed allocation region on the CXL device
// holding one checkpoint's OS structures. It is append-only until
// released as a whole (checkpoints are immutable; reclaim drops the
// entire checkpoint).
//
// Publication is a two-phase commit: an arena starts staged and becomes
// restorable only after Seal. A node that crashes mid-checkpoint leaves
// a staged arena behind; Device.Recover garbage-collects it, so torn
// images never leak capacity or become restorable. The arena also owns
// the checkpoint's data frames (via TrackFrame) so both Release and
// Recover can reclaim them without help from the mechanism that died.
type Arena struct {
	dev    *Device
	name   string
	objs   []arenaObj
	bytes  int64
	frames []*memsim.Frame
	sealed bool
	closed bool
}

// Name returns the arena name (the checkpoint ID).
func (a *Arena) Name() string { return a.name }

// Bytes returns the metadata bytes held by this arena.
func (a *Arena) Bytes() int64 { return a.bytes }

// Len returns the number of allocated objects.
func (a *Arena) Len() int { return len(a.objs) - 1 }

// Alloc stores obj in the arena, charging size bytes against the device,
// and returns its offset. Sealed arenas are immutable: allocating into
// one is an error.
func (a *Arena) Alloc(obj any, size int64) (Offset, error) {
	if a.closed {
		return Nil, fmt.Errorf("cxl: arena %q is released", a.name)
	}
	if a.sealed {
		return Nil, fmt.Errorf("cxl: arena %q is sealed", a.name)
	}
	if size < 0 {
		panic("cxl: negative object size")
	}
	if err := a.dev.charge(size); err != nil {
		return Nil, err
	}
	a.objs = append(a.objs, arenaObj{v: obj, size: size})
	a.bytes += size
	return Offset(len(a.objs) - 1), nil
}

// MustAlloc is Alloc for contexts where device exhaustion is a setup bug.
func (a *Arena) MustAlloc(obj any, size int64) Offset {
	off, err := a.Alloc(obj, size)
	if err != nil {
		panic(err)
	}
	return off
}

// Get dereferences an offset. It panics on Nil or out-of-range offsets:
// those are rebase bugs.
func (a *Arena) Get(off Offset) any {
	if a.closed {
		panic(fmt.Sprintf("cxl: Get on released arena %q", a.name))
	}
	if off == Nil || int(off) >= len(a.objs) {
		panic(fmt.Sprintf("cxl: invalid offset %d in arena %q (%d objects)", off, a.name, a.Len()))
	}
	return a.objs[off].v
}

// TrackFrame hands ownership of one reference on a data frame to the
// arena: Release (and Recover, for torn arenas) will Put it back to its
// pool.
func (a *Arena) TrackFrame(f *memsim.Frame) {
	if a.closed {
		panic(fmt.Sprintf("cxl: TrackFrame on released arena %q", a.name))
	}
	a.frames = append(a.frames, f)
}

// ForEachFrame visits every frame reference the arena owns, in tracking
// order. A deduped frame shared by several images (or mapped at several
// addresses of one image) is visited once per reference.
func (a *Arena) ForEachFrame(fn func(*memsim.Frame)) {
	for _, f := range a.frames {
		fn(f)
	}
}

// FrameBytes returns the bytes of data frames the arena owns.
func (a *Arena) FrameBytes() int64 {
	return int64(len(a.frames)) * int64(a.dev.p.PageSize)
}

// Seal commits the arena: it becomes immutable and visible to Restore.
// Sealing is the last step of checkpoint publication; everything before
// it is recoverable staging.
func (a *Arena) Seal() error {
	if a.closed {
		return fmt.Errorf("cxl: Seal on released arena %q", a.name)
	}
	a.sealed = true
	return nil
}

// Sealed reports whether the arena completed its two-phase commit.
// Restore paths refuse unsealed arenas: they are torn images.
func (a *Arena) Sealed() bool { return a.sealed }

// Release frees the arena: its metadata accounting, its registration on
// the device, and every data frame handed to it via TrackFrame.
// Releasing twice is a no-op.
func (a *Arena) Release() {
	if a.closed {
		return
	}
	a.closed = true
	a.dev.metaBytes -= a.bytes
	delete(a.dev.arenas, a.name)
	for _, f := range a.frames {
		f.Pool().Put(f)
	}
	a.frames = nil
	a.objs = nil
}

// Closed reports whether the arena has been released.
func (a *Arena) Closed() bool { return a.closed }

// Get is the typed dereference helper: Get[T](arena, off) panics if the
// object at off is not a T, which indicates a corrupted or mis-rebased
// reference.
func Get[T any](a *Arena, off Offset) T {
	v, ok := a.Get(off).(T)
	if !ok {
		panic(fmt.Sprintf("cxl: offset %d in arena %q holds %T, not %T", off, a.name, a.Get(off), v))
	}
	return v
}
