package cxl

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/fabric"
	"cxlfork/internal/params"
	"cxlfork/internal/telemetry"
)

// DevicePool is the multi-device view of the fabric-attached memory:
// N independent expander devices whose combined capacity is p.CXLBytes,
// split evenly. Each device has its own frame pool, arena namespace,
// and dedup index — content dedup is intra-device, because a frame
// reference cannot span expanders. A pool of one device is byte-for-byte
// the original single-device model.
//
// Devices fail permanently (DeviceLoss faults); the pool only tracks
// the failed bit — recovering the data is the replica manager's job.
type DevicePool struct {
	p    params.Params
	devs []*Device

	// topo is the fabric graph the devices are placed on, or nil for
	// the flat (pre-topology) model. Placement layers consult it for
	// path costs; the pool itself only validates the device count.
	topo *fabric.Topology
}

// NewDevicePool creates a pool of n devices (n <= 0 is treated as 1).
// With n == 1 the single device is exactly NewDevice(p); with n > 1
// each device gets a page-aligned 1/n share of p.CXLBytes.
func NewDevicePool(p params.Params, n int) *DevicePool {
	if n <= 0 {
		n = 1
	}
	pool := &DevicePool{p: p, devs: make([]*Device, n)}
	if n == 1 {
		pool.devs[0] = NewDevice(p)
		return pool
	}
	ps := int64(p.PageSize)
	per := (p.CXLBytes/int64(n) + ps - 1) / ps * ps
	for i := range pool.devs {
		pool.devs[i] = NewDeviceSized(p, i, per)
	}
	return pool
}

// N returns the number of devices in the pool (healthy or not).
func (dp *DevicePool) N() int { return len(dp.devs) }

// Place attaches the pool to a built fabric topology. Device i of the
// pool occupies topology device index i, so the topology must declare
// exactly N devices.
func (dp *DevicePool) Place(t *fabric.Topology) error {
	if t == nil {
		dp.topo = nil
		return nil
	}
	if t.Devices() != len(dp.devs) {
		return fmt.Errorf("cxl: topology declares %d devices, pool has %d", t.Devices(), len(dp.devs))
	}
	dp.topo = t
	return nil
}

// Topology returns the fabric graph the pool is placed on, or nil for
// the flat model.
func (dp *DevicePool) Topology() *fabric.Topology { return dp.topo }

// Device returns device i. Out-of-range panics: device indices come
// from placement decisions and are never guessed.
func (dp *DevicePool) Device(i int) *Device {
	if i < 0 || i >= len(dp.devs) {
		panic(fmt.Sprintf("cxl: device index %d out of range (pool of %d)", i, len(dp.devs)))
	}
	return dp.devs[i]
}

// Fail marks device i permanently failed.
func (dp *DevicePool) Fail(i int) { dp.Device(i).Fail() }

// Failed reports whether device i has been lost.
func (dp *DevicePool) Failed(i int) bool { return dp.Device(i).Failed() }

// Healthy returns the number of surviving devices.
func (dp *DevicePool) Healthy() int {
	n := 0
	for _, d := range dp.devs {
		if !d.failed {
			n++
		}
	}
	return n
}

// ForEachHealthy visits every surviving device in index order.
func (dp *DevicePool) ForEachHealthy(fn func(*Device)) {
	for _, d := range dp.devs {
		if !d.failed {
			fn(d)
		}
	}
}

// UsedBytes returns total occupancy across surviving devices. Lost
// devices do not count: their contents are gone, not reclaimable.
func (dp *DevicePool) UsedBytes() int64 {
	var n int64
	dp.ForEachHealthy(func(d *Device) { n += d.UsedBytes() })
	return n
}

// CapacityBytes returns total capacity across surviving devices.
func (dp *DevicePool) CapacityBytes() int64 {
	var n int64
	dp.ForEachHealthy(func(d *Device) { n += d.CapacityBytes() })
	return n
}

// Utilization returns aggregate occupancy of the surviving devices in
// [0,1], or 1 when every device is gone.
func (dp *DevicePool) Utilization() float64 {
	c := dp.CapacityBytes()
	if c == 0 {
		return 1
	}
	return float64(dp.UsedBytes()) / float64(c)
}

// MaxUtilization returns the occupancy of the fullest surviving device
// — the watermark signal for per-device capacity pressure.
func (dp *DevicePool) MaxUtilization() float64 {
	var m float64
	dp.ForEachHealthy(func(d *Device) {
		if u := d.Utilization(); u > m {
			m = u
		}
	})
	return m
}

// RegisterTelemetry registers device telemetry for the whole pool.
// Device 0 keeps its historical unlabeled series (cxl_used_bytes,
// cxl_utilization, ...) so the SLO engine and single-device dashboards
// are unchanged; pools with more than one device add per-device labeled
// occupancy gauges and aggregate pool series on top.
func (dp *DevicePool) RegisterTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	dp.devs[0].RegisterTelemetry(reg)
	if len(dp.devs) == 1 {
		return
	}
	for _, d := range dp.devs {
		d := d
		dev := telemetry.L("device", d.Name())
		reg.Gauge("cxl_device_used_bytes", "bytes allocated on one pool device",
			func(des.Time) float64 { return float64(d.UsedBytes()) }, dev)
		reg.Gauge("cxl_device_utilization", "one pool device's occupancy as a fraction of its capacity",
			func(des.Time) float64 { return d.Utilization() }, dev)
		reg.Gauge("cxl_device_failed", "1 when the device has been permanently lost",
			func(des.Time) float64 {
				if d.Failed() {
					return 1
				}
				return 0
			}, dev)
	}
	reg.Gauge("cxl_pool_devices_healthy", "surviving devices in the pool",
		func(des.Time) float64 { return float64(dp.Healthy()) })
	reg.Gauge("cxl_pool_utilization", "aggregate occupancy across surviving pool devices",
		func(des.Time) float64 { return dp.Utilization() })
	reg.Gauge("cxl_pool_max_utilization", "occupancy of the fullest surviving pool device",
		func(des.Time) float64 { return dp.MaxUtilization() })
}
