package fsim

import (
	"testing"

	"cxlfork/internal/cxl"
	"cxlfork/internal/memsim"
	"cxlfork/internal/params"
)

func TestFSCreateLookup(t *testing.T) {
	fs := NewFS()
	fs.Create("/lib/a.so", 8192)
	f, err := fs.Lookup("/lib/a.so")
	if err != nil || f.Size != 8192 {
		t.Fatalf("lookup: %v %+v", err, f)
	}
	if _, err := fs.Lookup("/nope"); err == nil {
		t.Fatal("phantom file found")
	}
	if got := fs.Paths(); len(got) != 1 || got[0] != "/lib/a.so" {
		t.Fatalf("paths = %v", got)
	}
}

func TestPageTokensDeterministicAndDistinct(t *testing.T) {
	fs := NewFS()
	a := fs.Create("/a", 4096*4)
	b := fs.Create("/b", 4096*4)
	if a.PageToken(0) != a.PageToken(0) {
		t.Fatal("token not deterministic")
	}
	if a.PageToken(0) == a.PageToken(1) {
		t.Fatal("pages share token")
	}
	if a.PageToken(0) == b.PageToken(0) {
		t.Fatal("files share token")
	}
	if a.PageToken(0) == 0 {
		t.Fatal("zero token (means zeroed page)")
	}
}

func TestPageCacheSharing(t *testing.T) {
	pool := memsim.NewPool("dram", memsim.Local, 1<<20, 4096)
	pc := NewPageCache(pool)
	fs := NewFS()
	f := fs.Create("/a", 4096*4)

	fr1, hit, err := pc.Get(f, 0)
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	if fr1.Data != f.PageToken(0) {
		t.Fatal("cached frame has wrong content")
	}
	fr2, hit, _ := pc.Get(f, 0)
	if !hit || fr2 != fr1 {
		t.Fatal("second get did not share the frame")
	}
	if pc.Hits != 1 || pc.Misses != 1 || pc.Pages() != 1 {
		t.Fatalf("stats hits=%d misses=%d pages=%d", pc.Hits, pc.Misses, pc.Pages())
	}
	if !pc.Contains(f, 0) || pc.Contains(f, 1) {
		t.Fatal("Contains wrong")
	}
}

func TestPageCacheDrop(t *testing.T) {
	pool := memsim.NewPool("dram", memsim.Local, 1<<20, 4096)
	pc := NewPageCache(pool)
	fs := NewFS()
	a := fs.Create("/a", 4096*4)
	b := fs.Create("/b", 4096*4)
	pc.Get(a, 0)
	pc.Get(a, 1)
	pc.Get(b, 0)
	if n := pc.Drop("/a"); n != 2 {
		t.Fatalf("dropped %d", n)
	}
	if pool.UsedPages() != 1 {
		t.Fatalf("pool used = %d", pool.UsedPages())
	}
	if n := pc.DropAll(); n != 1 {
		t.Fatalf("drop all = %d", n)
	}
	if pool.UsedPages() != 0 {
		t.Fatal("leak after DropAll")
	}
}

func newDev() *cxl.Device {
	p := params.Default()
	p.CXLBytes = 1 << 20
	return cxl.NewDevice(p)
}

func TestCXLFSWriteRead(t *testing.T) {
	dev := newDev()
	fs := NewCXLFS(dev)
	blob := []byte("image-bytes")
	if err := fs.Write("ck1.img", blob, 100_000); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("ck1.img")
	if err != nil || string(got) != "image-bytes" {
		t.Fatalf("read: %q %v", got, err)
	}
	if sz, _ := fs.Size("ck1.img"); sz != 100_000 {
		t.Fatalf("logical size = %d", sz)
	}
	if dev.UsedBytes() != 100_000 {
		t.Fatalf("device charge = %d", dev.UsedBytes())
	}
	if dev.WriteBytes != 100_000 || dev.ReadBytes != 100_000 {
		t.Fatalf("fabric traffic w=%d r=%d", dev.WriteBytes, dev.ReadBytes)
	}
}

func TestCXLFSWriteOnce(t *testing.T) {
	fs := NewCXLFS(newDev())
	fs.Write("x", []byte("a"), 10)
	if err := fs.Write("x", []byte("b"), 10); err == nil {
		t.Fatal("overwrite accepted")
	}
}

func TestCXLFSRemoveReleasesCapacity(t *testing.T) {
	dev := newDev()
	fs := NewCXLFS(dev)
	fs.Write("x", []byte("a"), 500_000)
	if !fs.Remove("x") {
		t.Fatal("remove failed")
	}
	if dev.UsedBytes() != 0 {
		t.Fatalf("device still charged %d", dev.UsedBytes())
	}
	if fs.Remove("x") {
		t.Fatal("double remove succeeded")
	}
	// Name reusable after removal.
	if err := fs.Write("x", []byte("b"), 10); err != nil {
		t.Fatal(err)
	}
}

func TestCXLFSCapacity(t *testing.T) {
	fs := NewCXLFS(newDev())
	if err := fs.Write("big", []byte("x"), 2<<20); err == nil {
		t.Fatal("over-capacity write accepted")
	}
}

func TestCXLFSUnmount(t *testing.T) {
	dev := newDev()
	fs := NewCXLFS(dev)
	fs.Write("a", []byte("1"), 10)
	fs.Write("b", []byte("2"), 10)
	fs.Unmount()
	if fs.Files() != 0 || dev.UsedBytes() != 0 {
		t.Fatal("unmount incomplete")
	}
}
