package fsim

import (
	"fmt"
	"hash/fnv"
	"sort"

	"cxlfork/internal/cxl"
	"cxlfork/internal/memsim"
)

// FS is the shared root filesystem. One instance is shared by all nodes
// in a cluster; paths resolve identically everywhere.
type FS struct {
	files map[string]*File
}

// NewFS returns an empty filesystem.
func NewFS() *FS { return &FS{files: make(map[string]*File)} }

// File is an immutable file on the shared root filesystem (binaries,
// libraries, model weights).
type File struct {
	Path string
	Size int64
}

// Create registers a file. Re-creating a path replaces it.
func (fs *FS) Create(path string, size int64) *File {
	f := &File{Path: path, Size: size}
	fs.files[path] = f
	return f
}

// Lookup resolves a path, or returns an error (the file must exist on
// the restoring node for global-state restore to succeed).
func (fs *FS) Lookup(path string) (*File, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("fsim: no such file %q", path)
	}
	return f, nil
}

// Paths returns all file paths in sorted order.
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PageToken returns the deterministic content token of page idx of the
// file. Identical across nodes — the content is the same file.
func (f *File) PageToken(idx int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(f.Path))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(idx >> (8 * i))
	}
	_, _ = h.Write(b[:])
	t := h.Sum64()
	if t == 0 {
		t = 1
	}
	return t
}

// PageCache is one node's file page cache. Cached file pages occupy
// local DRAM frames; the cache holds one reference per frame and mapped
// processes hold additional references.
type PageCache struct {
	pool    *memsim.Pool
	entries map[pcKey]*memsim.Frame

	Hits   int64
	Misses int64
}

type pcKey struct {
	path string
	idx  int
}

// NewPageCache returns a page cache backed by the node pool.
func NewPageCache(pool *memsim.Pool) *PageCache {
	return &PageCache{pool: pool, entries: make(map[pcKey]*memsim.Frame)}
}

// Pages returns the number of cached file pages.
func (pc *PageCache) Pages() int { return len(pc.entries) }

// Get returns the cached frame for (file, idx) and whether it was
// already resident. On a miss the page is read from backing storage into
// a newly allocated frame. The returned frame's reference belongs to the
// cache; callers mapping it must Get their own.
func (pc *PageCache) Get(f *File, idx int) (*memsim.Frame, bool, error) {
	k := pcKey{f.Path, idx}
	if fr, ok := pc.entries[k]; ok {
		pc.Hits++
		return fr, true, nil
	}
	pc.Misses++
	fr, err := pc.pool.Alloc()
	if err != nil {
		return nil, false, err
	}
	fr.Data = f.PageToken(idx)
	pc.entries[k] = fr
	return fr, false, nil
}

// Contains reports residency without faulting the page in.
func (pc *PageCache) Contains(f *File, idx int) bool {
	_, ok := pc.entries[pcKey{f.Path, idx}]
	return ok
}

// Drop evicts all cached pages of one file.
func (pc *PageCache) Drop(path string) int {
	n := 0
	for k, fr := range pc.entries {
		if k.path == path {
			pc.pool.Put(fr)
			delete(pc.entries, k)
			n++
		}
	}
	return n
}

// DropAll empties the cache (memory reclaim).
func (pc *PageCache) DropAll() int {
	n := len(pc.entries)
	for k, fr := range pc.entries {
		pc.pool.Put(fr)
		delete(pc.entries, k)
	}
	return n
}

// CXLFS is the in-CXL-memory filesystem shared between nodes, used to
// hold CRIU image files. Each file is one blob charged against the CXL
// device through its own arena, so files are individually removable
// (checkpoint reclaim).
type CXLFS struct {
	dev   *cxl.Device
	files map[string]cxlFile
	seq   int
}

type cxlFile struct {
	arena *cxl.Arena
	off   cxl.Offset
	size  int64
}

// NewCXLFS mounts a cxlfs instance on the device.
func NewCXLFS(dev *cxl.Device) *CXLFS {
	return &CXLFS{dev: dev, files: make(map[string]cxlFile)}
}

// Write stores blob under name, charging logicalSize bytes against the
// device. The logical size is the image's on-medium size (CRIU page
// records carry whole pages, which the simulation represents compactly
// as content tokens); it must be at least len(blob). cxlfs files are
// write-once (CRIU image semantics).
func (c *CXLFS) Write(name string, blob []byte, logicalSize int64) error {
	if _, ok := c.files[name]; ok {
		return fmt.Errorf("cxlfs: %q already exists", name)
	}
	if logicalSize < int64(len(blob)) {
		logicalSize = int64(len(blob))
	}
	c.seq++
	arena, err := c.dev.NewArena(fmt.Sprintf("cxlfs:%s#%d", name, c.seq))
	if err != nil {
		return err
	}
	off, err := arena.Alloc(blob, logicalSize)
	if err != nil {
		arena.Release()
		return err
	}
	c.dev.WriteBytes += logicalSize
	c.files[name] = cxlFile{arena: arena, off: off, size: logicalSize}
	return nil
}

// Read returns the blob stored under name. Reads are shared-memory
// accesses: no copy is made, but fabric read traffic is accounted.
func (c *CXLFS) Read(name string) ([]byte, error) {
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("cxlfs: no such file %q", name)
	}
	c.dev.ReadBytes += f.size
	return cxl.Get[[]byte](f.arena, f.off), nil
}

// Size returns the byte size of a stored file.
func (c *CXLFS) Size(name string) (int64, error) {
	f, ok := c.files[name]
	if !ok {
		return 0, fmt.Errorf("cxlfs: no such file %q", name)
	}
	return f.size, nil
}

// Remove deletes a file, releasing its device capacity.
func (c *CXLFS) Remove(name string) bool {
	f, ok := c.files[name]
	if !ok {
		return false
	}
	f.arena.Release()
	delete(c.files, name)
	return true
}

// Unmount releases every file.
func (c *CXLFS) Unmount() {
	for name := range c.files {
		c.Remove(name)
	}
}

// Files returns the number of stored files.
func (c *CXLFS) Files() int { return len(c.files) }
