// Package fsim models the filesystem layer: a root filesystem that is
// identical on every node (the container-image assumption CXLfork, CRIU
// and Mitosis all make, paper §4.1), per-node page caches serving file
// faults, and cxlfs — an in-CXL-memory filesystem shared between nodes,
// which the CRIU-CXL baseline uses to exchange checkpoint image files
// (§6.2).
//
// Entry points: NewFS for the shared root filesystem, NewPageCache per
// node, NewCXLFS for the CRIU-CXL image exchange.
package fsim
