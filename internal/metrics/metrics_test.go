package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cxlfork/internal/des"
)

func TestPercentilesExact(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(des.Time(i))
	}
	if got := r.P50(); got != 50 {
		t.Fatalf("P50 = %v", got)
	}
	if got := r.P99(); got != 99 {
		t.Fatalf("P99 = %v", got)
	}
	if got := r.Max(); got != 100 {
		t.Fatalf("Max = %v", got)
	}
	if got := r.Percentile(1); got != 1 {
		t.Fatalf("P1 = %v", got)
	}
	if got := r.Mean(); got != 50 { // (1+..+100)/100 = 50.5 truncated
		t.Fatalf("Mean = %v", got)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.P99() != 0 || r.Mean() != 0 || r.Count() != 0 {
		t.Fatal("empty recorder not zero")
	}
}

func TestRecordAfterPercentile(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(10)
	_ = r.P50()
	r.Record(5) // must re-sort
	if got := r.Percentile(1); got != 5 {
		t.Fatalf("P1 after late record = %v", got)
	}
}

func TestReset(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(10)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}

// TestPercentileMatchesNearestRank property-checks against a direct
// nearest-rank computation.
func TestPercentileMatchesNearestRank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		r := NewLatencyRecorder()
		vals := make([]des.Time, n)
		for i := range vals {
			vals[i] = des.Time(rng.Intn(1_000_000))
			r.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, p := range []float64{1, 25, 50, 90, 99, 100} {
			rank := int(float64(n)*p/100 + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			if r.Percentile(p) != vals[rank-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGaugeTimeWeightedMean(t *testing.T) {
	var g Gauge
	g.Observe(0, 1.0)
	g.Observe(10, 3.0)  // value 1.0 held for 10
	g.Observe(20, 3.0)  // value 3.0 held for 10
	m := g.MeanOver(20) // (1*10 + 3*10) / 20 = 2
	if m != 2.0 {
		t.Fatalf("mean = %v", m)
	}
	if g.Max() != 3.0 {
		t.Fatalf("max = %v", g.Max())
	}
}

func TestGaugeEmpty(t *testing.T) {
	var g Gauge
	if g.MeanOver(100) != 0 || g.Max() != 0 {
		t.Fatal("empty gauge not zero")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(226, 100); got != "2.26x" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "inf" {
		t.Fatalf("Ratio by zero = %q", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Add(0)
	if c.Value() != 5 {
		t.Fatalf("Add(0) changed value to %d", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative Add")
		}
	}()
	c.Add(-1)
}

func TestFaultCountersZeroValue(t *testing.T) {
	var fc FaultCounters
	fc.Injected.Inc()
	fc.RecoveredBytes.Add(4096)
	if fc.Injected.Value() != 1 || fc.RecoveredBytes.Value() != 4096 {
		t.Fatalf("counters = %+v", fc)
	}
	if fc.Retries.Value() != 0 || fc.Fallbacks.Value() != 0 {
		t.Fatal("untouched counters non-zero")
	}
}
