package metrics

import (
	"fmt"
	"math"
	"sort"

	"cxlfork/internal/des"
)

// LatencyRecorder collects latency samples and reports percentiles.
type LatencyRecorder struct {
	samples []des.Time
	sorted  bool
	sum     des.Time
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds a sample.
func (r *LatencyRecorder) Record(d des.Time) {
	r.samples = append(r.samples, d)
	r.sorted = false
	r.sum += d
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Sum returns the total of all samples.
func (r *LatencyRecorder) Sum() des.Time { return r.sum }

// Mean returns the average latency (0 with no samples).
func (r *LatencyRecorder) Mean() des.Time {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / des.Time(len(r.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted samples. It returns 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) des.Time {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if p <= 0 {
		return r.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Quantile returns the p-th percentile (0 <= p <= 100) with linear
// interpolation between adjacent order statistics — the smoother
// estimator telemetry summaries use, where nearest-rank's stair-steps
// would show up as false level shifts. A single-sample distribution
// returns that sample for every p: the naive interpolation index
// p/100*(n-1) degenerates to position 0 of an unguarded formula and
// historically reported 0 for P50.
func (r *LatencyRecorder) Quantile(p float64) des.Time {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if len(r.samples) == 1 {
		return r.samples[0]
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[len(r.samples)-1]
	}
	pos := p / 100 * float64(len(r.samples)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if frac == 0 {
		return r.samples[lo]
	}
	a, b := float64(r.samples[lo]), float64(r.samples[lo+1])
	return des.Time(math.Round(a + frac*(b-a)))
}

// Presort sorts the sample buffer ahead of percentile queries, so a
// worker pool can pay the O(n log n) for many recorders in parallel
// before a sequential summary pass reads them. Sorting is the
// recorders' only deferred work; after Presort, Percentile and
// Quantile are read-only until the next Record.
func (r *LatencyRecorder) Presort() {
	if !r.sorted && len(r.samples) > 0 {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
	}
	r.sorted = true
}

// P50 returns the median.
func (r *LatencyRecorder) P50() des.Time { return r.Percentile(50) }

// P99 returns the 99th percentile.
func (r *LatencyRecorder) P99() des.Time { return r.Percentile(99) }

// Max returns the largest sample.
func (r *LatencyRecorder) Max() des.Time { return r.Percentile(100) }

// Reset discards all samples.
func (r *LatencyRecorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
	r.sum = 0
}

// PhaseStats aggregates latency distributions keyed by phase name — the
// per-phase histograms the virtual-time tracer folds span durations
// into, so experiments can report a checkpoint's serialize/copy/rebase
// decomposition (paper Fig. 6) instead of only end-to-end totals.
type PhaseStats struct {
	m map[string]*LatencyRecorder
}

// NewPhaseStats returns an empty phase table.
func NewPhaseStats() *PhaseStats {
	return &PhaseStats{m: make(map[string]*LatencyRecorder)}
}

// Record adds one sample to the named phase's distribution.
func (s *PhaseStats) Record(phase string, d des.Time) {
	r, ok := s.m[phase]
	if !ok {
		r = NewLatencyRecorder()
		s.m[phase] = r
	}
	r.Record(d)
}

// Phases returns the recorded phase names, sorted (deterministic
// iteration for reports and golden tests).
func (s *PhaseStats) Phases() []string {
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Recorder returns the named phase's distribution, or nil if the phase
// was never recorded.
func (s *PhaseStats) Recorder(phase string) *LatencyRecorder { return s.m[phase] }

// Percentile returns the named phase's p-th percentile with linear
// interpolation (see LatencyRecorder.Quantile); in particular a phase
// holding a single sample returns that sample, not 0. An unrecorded
// phase returns 0.
func (s *PhaseStats) Percentile(phase string, p float64) des.Time {
	r, ok := s.m[phase]
	if !ok {
		return 0
	}
	return r.Quantile(p)
}

// Total returns the summed time across all phases.
func (s *PhaseStats) Total() des.Time {
	var total des.Time
	for _, r := range s.m {
		total += r.Sum()
	}
	return total
}

// Gauge tracks a time-weighted average of a quantity sampled over
// virtual time (memory utilization, instance counts).
type Gauge struct {
	lastT   des.Time
	lastV   float64
	area    float64
	started bool
	max     float64
}

// Observe records the quantity's value at virtual time t. Values are
// held constant between observations.
func (g *Gauge) Observe(t des.Time, v float64) {
	if g.started && t > g.lastT {
		g.area += g.lastV * float64(t-g.lastT)
	}
	if !g.started || v > g.max {
		g.max = v
	}
	g.lastT, g.lastV, g.started = t, v, true
}

// MeanOver returns the time-weighted mean from time zero (callers start
// observing at t≈0) to end.
func (g *Gauge) MeanOver(end des.Time) float64 {
	if !g.started || end <= 0 {
		return 0
	}
	area := g.area
	if end > g.lastT {
		area += g.lastV * float64(end-g.lastT)
	}
	return area / float64(end)
}

// Max returns the largest observed value.
func (g *Gauge) Max() float64 { return g.max }

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct {
	n int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds d (>= 0) to the counter.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: negative counter add")
	}
	c.n += d
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// FaultCounters aggregates the availability-side accounting that the
// fault-injection subsystem and the autoscaler's degradation paths
// maintain, so experiments can report availability alongside latency.
type FaultCounters struct {
	// Injected counts faults fired by a fault-injection plan.
	Injected Counter
	// Retries counts operations re-attempted after a fault (e.g. a
	// restore retried on an alternate node).
	Retries Counter
	// Fallbacks counts degradations to a slower path (e.g. a cold start
	// instead of a fork) after retries were exhausted or impossible.
	Fallbacks Counter
	// RecoveredBytes counts bytes reclaimed by Device.Recover passes
	// garbage-collecting torn (unsealed) checkpoint arenas.
	RecoveredBytes Counter
	// RetryExhausted counts requests whose per-request retry budget ran
	// out — kept distinct from Fallbacks so availability reports can
	// separate "degraded by policy" from "degraded because retrying
	// stopped being worth it".
	RetryExhausted Counter
}

// ReplicaCounters aggregates the replication manager's accounting: how
// many replicas were placed, shed under capacity pressure, rebuilt by
// the anti-entropy repair loop, and how many images were lost outright
// when every replica's device failed.
type ReplicaCounters struct {
	// Placed counts replica arenas created by placement (initial and
	// repair placements both count).
	Placed Counter
	// RepairCopies counts replicas rebuilt by the repair loop.
	RepairCopies Counter
	// RepairedPages counts pages copied by the repair loop.
	RepairedPages Counter
	// Failovers counts restores served by a non-preferred replica after
	// probing one or more dead devices.
	Failovers Counter
	// Shed counts replicas dropped by replica-aware eviction (capacity
	// pressure sheds redundancy before it evicts whole images).
	Shed Counter
	// LostImages counts images that became unrestorable because their
	// last healthy replica's device failed.
	LostImages Counter
}

// DedupCounters aggregates the content-addressed frame dedup cache's
// accounting: how often a checkpoint page write was satisfied by an
// existing identical frame instead of a fresh copy, and how many fabric
// bytes that elided.
type DedupCounters struct {
	// Hits counts page writes satisfied by an existing identical frame.
	Hits Counter
	// Misses counts page writes that allocated and copied a new frame.
	Misses Counter
	// BytesSaved counts fabric write bytes elided by hits.
	BytesSaved Counter
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (d *DedupCounters) HitRate() float64 {
	total := d.Hits.Value() + d.Misses.Value()
	if total == 0 {
		return 0
	}
	return float64(d.Hits.Value()) / float64(total)
}

// CapacityCounters aggregates the CXL capacity manager's accounting:
// watermark-driven checkpoint eviction, the admission ladder's refusals,
// and snapshot-based re-publishes of evicted checkpoints. EvictedBytes
// counts the actual device occupancy deltas (dedup-aware), not declared
// image footprints.
type CapacityCounters struct {
	// ReclaimPasses counts watermark-triggered eviction passes.
	ReclaimPasses Counter
	// Evictions counts checkpoints dropped from the object store by the
	// eviction engine.
	Evictions Counter
	// EvictedBytes counts device bytes those evictions actually freed
	// (occupancy delta; shared dedup frames and images pinned by live
	// clones contribute only what really came back).
	EvictedBytes Counter
	// DeferredBytes counts declared footprint of evicted images whose
	// release was deferred because live clones or in-flight restores
	// still hold references; the device frees it when they exit.
	DeferredBytes Counter
	// AdmitRefused counts checkpoint publications refused because the
	// device could not be brought under its high watermark — the middle
	// rung of the degradation ladder (evict → refuse → cold start).
	AdmitRefused Counter
	// Recheckpoints counts evicted checkpoints re-published from their
	// recorded frame-token snapshots.
	Recheckpoints Counter
}

// Ratio formats a/b as a multiplier string ("2.26x").
func Ratio(a, b des.Time) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
