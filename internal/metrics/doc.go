// Package metrics provides the latency and utilization accounting used
// by the experiment drivers: exact percentile estimation over recorded
// samples and simple time-weighted gauges.
//
// Entry points: NewLatencyRecorder and NewPhaseStats; Counter, Gauge
// and the *Counters bundles (faults, dedup, capacity) are plain
// accumulators threaded through the subsystems. The percentile
// reporting backs the paper's P50/P99 evaluation metrics (§6-§7).
package metrics
