package metrics

import (
	"testing"

	"cxlfork/internal/des"
)

// Regression: a single-sample series must report the sample itself for
// every quantile — the unguarded interpolation formula used to return
// 0 for P50.
func TestQuantileSingleSample(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(42 * des.Millisecond)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := r.Quantile(p); got != 42*des.Millisecond {
			t.Fatalf("Quantile(%g) = %v on single-sample series, want the sample", p, got)
		}
	}

	s := NewPhaseStats()
	s.Record("copy", 7*des.Microsecond)
	if got := s.Percentile("copy", 50); got != 7*des.Microsecond {
		t.Fatalf("PhaseStats.Percentile P50 = %v on single-sample phase, want the sample", got)
	}
	if got := s.Percentile("missing", 50); got != 0 {
		t.Fatalf("unrecorded phase Percentile = %v, want 0", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewLatencyRecorder()
	for _, v := range []des.Time{30, 10, 20, 40} { // unsorted on purpose
		r.Record(v)
	}
	cases := []struct {
		p    float64
		want des.Time
	}{
		{0, 10},
		{25, 18}, // pos 0.75 between 10 and 20 → 17.5, rounds to 18
		{50, 25},
		{100, 40},
		{-5, 10},
		{150, 40},
	}
	for _, c := range cases {
		if got := r.Quantile(c.p); got != c.want {
			t.Fatalf("Quantile(%g) = %v, want %v", c.p, got, c.want)
		}
	}
	if r.Quantile(50) != 25 {
		t.Fatal("repeated Quantile must be stable")
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := NewLatencyRecorder().Quantile(50); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}
