package metrics

import (
	"testing"

	"cxlfork/internal/des"
)

// TestPercentileEdgeCases table-drives the percentile boundary
// behaviour: no samples, a single sample, p=0, p=100, p outside the
// [0,100] range, and ties.
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		samples []des.Time
		p       float64
		want    des.Time
	}{
		{"no-samples-p50", nil, 50, 0},
		{"no-samples-p0", nil, 0, 0},
		{"no-samples-p100", nil, 100, 0},
		{"one-sample-p0", []des.Time{7}, 0, 7},
		{"one-sample-p1", []des.Time{7}, 1, 7},
		{"one-sample-p50", []des.Time{7}, 50, 7},
		{"one-sample-p100", []des.Time{7}, 100, 7},
		{"two-samples-p0", []des.Time{3, 9}, 0, 3},
		{"two-samples-p50", []des.Time{3, 9}, 50, 3},
		{"two-samples-p51", []des.Time{3, 9}, 51, 9},
		{"two-samples-p100", []des.Time{3, 9}, 100, 9},
		{"negative-p-clamps-to-min", []des.Time{3, 9}, -5, 3},
		{"over-100-clamps-to-max", []des.Time{3, 9}, 250, 9},
		{"all-ties", []des.Time{4, 4, 4, 4}, 99, 4},
		{"unsorted-input", []des.Time{9, 1, 5}, 100, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewLatencyRecorder()
			for _, s := range tc.samples {
				r.Record(s)
			}
			if got := r.Percentile(tc.p); got != tc.want {
				t.Fatalf("Percentile(%v) over %v = %v, want %v",
					tc.p, tc.samples, got, tc.want)
			}
		})
	}
}

// TestDedupCounters table-drives the dedup accounting, in particular
// HitRate's division edge cases.
func TestDedupCounters(t *testing.T) {
	cases := []struct {
		name               string
		hits, misses       int64
		bytesSaved         int64
		wantRate           float64
		wantHits, wantMiss int64
	}{
		{"zero-value", 0, 0, 0, 0, 0, 0},
		{"all-misses", 0, 10, 0, 0, 0, 10},
		{"all-hits", 8, 0, 8 * 4096, 1, 8, 0},
		{"half", 5, 5, 5 * 4096, 0.5, 5, 5},
		{"quarter", 1, 3, 4096, 0.25, 1, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d DedupCounters
			for i := int64(0); i < tc.hits; i++ {
				d.Hits.Inc()
			}
			d.Misses.Add(tc.misses)
			d.BytesSaved.Add(tc.bytesSaved)
			if got := d.HitRate(); got != tc.wantRate {
				t.Fatalf("HitRate = %v, want %v", got, tc.wantRate)
			}
			if d.Hits.Value() != tc.wantHits || d.Misses.Value() != tc.wantMiss {
				t.Fatalf("counts = %d/%d, want %d/%d",
					d.Hits.Value(), d.Misses.Value(), tc.wantHits, tc.wantMiss)
			}
			if d.BytesSaved.Value() != tc.bytesSaved {
				t.Fatalf("BytesSaved = %d, want %d", d.BytesSaved.Value(), tc.bytesSaved)
			}
		})
	}
}
