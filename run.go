package cxlfork

import (
	"errors"
	"fmt"
	"time"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/des"
	"cxlfork/internal/experiments"
	"cxlfork/internal/faas"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
	"cxlfork/internal/telemetry"
	"cxlfork/internal/xray"
)

// ErrInterrupted is returned by RunWorkload when RunOptions.Interrupt
// stopped the replay before the trace drained. The accompanying report
// summarizes the partial run; its fingerprint is only comparable to
// other runs interrupted at the same virtual instant.
var ErrInterrupted = errors.New("cxlfork: run interrupted")

// Workload describes one replayed arrival trace for RunWorkload: the
// what-if question a capacity-planning session asks. The zero value
// replays the full function suite at 60 rps for 10 virtual seconds on
// the paper's CXLfork design.
type Workload struct {
	// Design selects the rfork mechanism the porter scales with:
	// "CXLfork" (dynamic tiering, default), "CXLfork-MoW" (static
	// migrate-on-write), "CRIU-CXL", or "Mitosis-CXL" — the Fig. 10
	// design axis.
	Design string
	// RPS is the aggregate request rate (default 60).
	RPS float64
	// Duration is the replayed trace length in virtual time
	// (default 10s).
	Duration time.Duration
	// Functions restricts the workload mix (default: full suite).
	Functions []string
	// Weights skews per-function request shares (unlisted functions
	// keep their default share).
	Weights map[string]float64
	// KeepAlive overrides the idle keep-alive window (0 keeps the
	// platform default).
	KeepAlive time.Duration
	// NodeBudgetBytes overrides the porter's per-node memory budget
	// (0 keeps Config.NodeDRAM) — "halve node memory" as a what-if.
	NodeBudgetBytes int64
	// Seed drives trace generation and jitter (default Config.Seed,
	// then 7 — the experiments' canonical seed).
	Seed int64
}

// WorkloadDesigns lists the accepted Workload.Design values.
var WorkloadDesigns = []string{"CXLfork", "CXLfork-MoW", "CRIU-CXL", "Mitosis-CXL"}

// SamplePoint is one series' value at a telemetry tick.
type SamplePoint struct {
	// Series is the metric key (name plus rendered labels).
	Series string
	// Kind is "gauge" or "counter".
	Kind string
	// Value is the sampled value.
	Value float64
}

// AlertEvent is one SLO burn-rate alert transition observed during a
// run.
type AlertEvent struct {
	// At is the virtual time of the transition.
	At time.Duration
	// Objective is the SLO objective name.
	Objective string
	// Firing is true on fire, false on resolve.
	Firing bool
	// Short and Long are the burn rates on the two alert windows.
	Short, Long float64
}

// Tick is one telemetry sampling tick delivered to RunOptions.OnSample:
// a consistent cross-series cut of every registered metric at one
// virtual instant, plus any SLO alert transitions since the previous
// tick.
type Tick struct {
	// Now is the virtual time of the tick.
	Now time.Duration
	// Seq is the tick's 1-based sequence number.
	Seq int64
	// Points holds every series' sampled value, in registration order
	// (the deterministic export order).
	Points []SamplePoint
	// Alerts are the SLO transitions that occurred since the last tick.
	Alerts []AlertEvent
}

// RunOptions carries the serving-side hooks of RunWorkload. Both
// callbacks run on the goroutine driving the simulation, inside the
// telemetry sampling event — they may block (live pacing does), and
// everything they observe is ordered with the virtual clock.
type RunOptions struct {
	// OnSample is invoked at every telemetry sampling tick. Setting it
	// forces telemetry on for the run; sampling is observational, so
	// the results stay byte-identical to a run without it.
	OnSample func(Tick)
	// Interrupt is polled after each tick; returning true stops the
	// engine and makes RunWorkload return ErrInterrupted. It is the
	// cancellation and timeout hook — contexts are wall-clock objects,
	// so the caller adapts one here.
	Interrupt func() bool
}

// FunctionLatency summarizes one function's request latencies in a
// RunReport.
type FunctionLatency struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// RunReport summarizes one RunWorkload replay. All latencies are
// virtual time. Fingerprint folds every scalar result and latency
// distribution into one hash (rendered as 16 hex digits): two runs of
// the same Config and Workload produce equal fingerprints regardless
// of worker count, telemetry, or the transport that delivered the spec
// — the serving layer's golden tests compare it across paths.
type RunReport struct {
	Design          string                     `json:"design"`
	Completed       int                        `json:"completed"`
	WarmStarts      int                        `json:"warm_starts"`
	ColdForks       int                        `json:"cold_forks"`
	ScratchCold     int                        `json:"scratch_cold"`
	FailedRestores  int                        `json:"failed_restores"`
	Evictions       int64                      `json:"evictions"`
	ReclaimPasses   int64                      `json:"reclaim_passes"`
	CkptRefused     int64                      `json:"ckpt_refused"`
	P50             time.Duration              `json:"p50_ns"`
	P99             time.Duration              `json:"p99_ns"`
	Mean            time.Duration              `json:"mean_ns"`
	Max             time.Duration              `json:"max_ns"`
	ColdP50         time.Duration              `json:"cold_p50_ns"`
	ColdP99         time.Duration              `json:"cold_p99_ns"`
	PerFunction     map[string]FunctionLatency `json:"per_function"`
	VirtualDuration time.Duration              `json:"virtual_duration_ns"`
	TelemetryTicks  int64                      `json:"telemetry_ticks"`
	SLOAlertsFired  int64                      `json:"slo_alerts_fired"`
	Alerts          []AlertEvent               `json:"-"`
	Fingerprint     string                     `json:"fingerprint"`
	Interrupted     bool                       `json:"interrupted,omitempty"`
	// XRay is the run's critical-path attribution report — the porter's
	// exact per-request blame decomposition — present only when
	// Config.XRay is set. It is observational: Fingerprint is computed
	// over the simulated results alone, so two runs differing only in
	// XRay carry equal fingerprints (the report has its own
	// byte-deterministic Fingerprint method).
	XRay *xray.Report `json:"xray,omitempty"`
}

// scenariosFor returns the calibration scenarios a design's profiles
// need: every design measures the scratch cold start plus its own
// mechanism; dynamic tiering additionally needs the MoA and hybrid
// policies it adapts across.
func scenariosFor(design string) ([]experiments.Scenario, error) {
	switch design {
	case "CXLfork":
		return []experiments.Scenario{
			experiments.ScenCold, experiments.ScenCXLfork,
			experiments.ScenCXLforkMoA, experiments.ScenCXLforkHT,
		}, nil
	case "CXLfork-MoW":
		return []experiments.Scenario{experiments.ScenCold, experiments.ScenCXLfork}, nil
	case "CRIU-CXL":
		return []experiments.Scenario{experiments.ScenCold, experiments.ScenCRIU}, nil
	case "Mitosis-CXL":
		return []experiments.Scenario{experiments.ScenCold, experiments.ScenMitosis}, nil
	}
	return nil, fmt.Errorf("cxlfork: unknown design %q (want one of %v)", design, WorkloadDesigns)
}

// RunWorkload replays one seeded arrival trace against a freshly built
// cluster and returns its results — the facade's synchronous
// capacity-planning entry point, and the exact runner behind every
// cxlserved session (DESIGN.md §15). Construction is fully
// session-scoped: the cluster, porter, calibration profiles, and
// telemetry registry live and die with this call, so any number of
// RunWorkload calls may run concurrently on independent goroutines.
//
// opts may be nil (no streaming, no cancellation). When
// opts.Interrupt stops the run mid-trace, RunWorkload returns the
// partial report alongside ErrInterrupted.
func RunWorkload(cfg Config, wl Workload, opts *RunOptions) (*RunReport, error) {
	if wl.Design == "" {
		wl.Design = "CXLfork"
	}
	if wl.RPS <= 0 {
		wl.RPS = 60
	}
	if wl.Duration <= 0 {
		wl.Duration = 10 * time.Second
	}
	if wl.Seed == 0 {
		wl.Seed = cfg.Seed
	}
	if wl.Seed == 0 {
		wl.Seed = 7
	}
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 2
	}

	specs := faas.Suite()
	if len(wl.Functions) > 0 {
		specs = specs[:0]
		for _, name := range wl.Functions {
			s, ok := faas.ByName(name)
			if !ok {
				return nil, fmt.Errorf("cxlfork: unknown function %q (see FunctionNames)", name)
			}
			specs = append(specs, s)
		}
	}
	scens, err := scenariosFor(wl.Design)
	if err != nil {
		return nil, err
	}

	p := cfg.params()
	if opts != nil && opts.OnSample != nil {
		p.TelemetryEnabled = true
	}
	if wl.KeepAlive > 0 {
		p.KeepAlive = des.Time(wl.KeepAlive)
	}

	// Calibrate with telemetry off: the mechanistic single-instance
	// measurements are a sizing probe, not part of the observed replay
	// (the same split TelemetryTrace makes).
	pm := p
	pm.TelemetryEnabled = false
	ms, err := experiments.MeasureAll(pm, specs, scens)
	if err != nil {
		return nil, err
	}
	profiles := experiments.BuildProfiles(ms)

	c, err := cluster.New(p, nodes)
	if err != nil {
		return nil, err
	}
	pcfg := porter.Config{
		Profiles:        profiles,
		Seed:            wl.Seed,
		NodeBudgetBytes: wl.NodeBudgetBytes,
	}
	switch wl.Design {
	case "CRIU-CXL":
		pcfg.Mechanism = criu.New(c.CXLFS)
	case "Mitosis-CXL":
		pcfg.Mechanism = mitosis.New()
	case "CXLfork-MoW":
		pcfg.Mechanism = core.New(c.Dev)
		pol := rfork.MigrateOnWrite
		pcfg.StaticPolicy = &pol
	default: // "CXLfork"
		pcfg.Mechanism = core.New(c.Dev)
		pcfg.DynamicTiering = true
	}
	po := porter.New(c, pcfg)
	if err := po.Setup(specs); err != nil {
		return nil, err
	}

	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	loads := azure.DefaultLoads(names)
	for i := range loads {
		if w, ok := wl.Weights[loads[i].Function]; ok {
			loads[i].Weight = w
		}
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: wl.RPS,
		Duration: des.Time(wl.Duration),
		Loads:    loads,
		Seed:     wl.Seed,
	})

	interrupted := false
	if opts != nil && opts.OnSample != nil {
		var seq int64
		var alertsSeen int
		c.Telem.SetSink(func(now des.Time) {
			seq++
			tick := Tick{Now: time.Duration(now), Seq: seq}
			for _, s := range c.Telem.Series() {
				if sm, ok := s.Last(); ok {
					tick.Points = append(tick.Points, SamplePoint{
						Series: s.Key(), Kind: s.Kind().String(), Value: sm.V,
					})
				}
			}
			alerts := po.SLOAlerts()
			for ; alertsSeen < len(alerts); alertsSeen++ {
				tick.Alerts = append(tick.Alerts, alertEvent(alerts[alertsSeen]))
			}
			opts.OnSample(tick)
			if opts.Interrupt != nil && opts.Interrupt() {
				interrupted = true
				c.Eng.Stop()
			}
		})
	}

	results := po.Run(trace)
	report := buildReport(wl.Design, results, po.SLOAlerts(), interrupted)
	if c.XRay.Enabled() {
		report.XRay = c.XRay.Report()
	}
	if interrupted {
		return report, ErrInterrupted
	}
	return report, nil
}

func alertEvent(a telemetry.Alert) AlertEvent {
	return AlertEvent{
		At:        time.Duration(a.At),
		Objective: a.Objective,
		Firing:    a.Firing,
		Short:     a.Short,
		Long:      a.Long,
	}
}

func buildReport(design string, r porter.Results, alerts []telemetry.Alert, interrupted bool) *RunReport {
	rep := &RunReport{
		Design:          design,
		Completed:       r.Completed,
		WarmStarts:      r.WarmStarts,
		ColdForks:       r.ColdForks,
		ScratchCold:     r.ScratchCold,
		FailedRestores:  r.FailedRestores,
		Evictions:       r.EvictedCkpts,
		ReclaimPasses:   r.ReclaimPasses,
		CkptRefused:     r.CkptRefused,
		PerFunction:     make(map[string]FunctionLatency),
		VirtualDuration: time.Duration(r.Duration),
		TelemetryTicks:  r.TelemetrySamples,
		SLOAlertsFired:  r.SLOAlertsFired,
		Fingerprint:     fmt.Sprintf("%016x", r.Fingerprint()),
		Interrupted:     interrupted,
	}
	if r.Overall != nil && r.Overall.Count() > 0 {
		rep.P50 = time.Duration(r.Overall.P50())
		rep.P99 = time.Duration(r.Overall.P99())
		rep.Mean = time.Duration(r.Overall.Mean())
		rep.Max = time.Duration(r.Overall.Max())
	}
	if r.ColdLatency != nil && r.ColdLatency.Count() > 0 {
		rep.ColdP50 = time.Duration(r.ColdLatency.P50())
		rep.ColdP99 = time.Duration(r.ColdLatency.P99())
	}
	for fn, rec := range r.PerFunction {
		if rec == nil || rec.Count() == 0 {
			continue
		}
		rep.PerFunction[fn] = FunctionLatency{
			Count: rec.Count(),
			P50:   time.Duration(rec.P50()),
			P99:   time.Duration(rec.P99()),
		}
	}
	for _, a := range alerts {
		rep.Alerts = append(rep.Alerts, alertEvent(a))
	}
	return rep
}
