package cxlfork

import (
	"errors"
	"testing"
	"time"
)

// poolConfig splits the device into a three-way pool. The facade
// System drives mechanisms directly (no autoscaler), so checkpoints
// land on the ingest device; the pool surface under test here is the
// device accessors and clock-driven device loss.
func poolConfig() Config {
	cfg := smallConfig()
	cfg.Replication = ReplicationConfig{
		Devices: 3,
		Factor:  2,
	}
	return cfg
}

func TestReplicationConfigSplitsThePool(t *testing.T) {
	sys := NewSystem(poolConfig())
	if sys.Devices() != 3 {
		t.Fatalf("Devices() = %d, want 3", sys.Devices())
	}
	// Default config keeps the single device.
	if n := NewSystem(smallConfig()).Devices(); n != 1 {
		t.Fatalf("default Devices() = %d, want 1", n)
	}
}

func TestFailDeviceIsTerminalAndRangeChecked(t *testing.T) {
	sys := NewSystem(poolConfig())
	for _, dev := range []int{-1, 3, 7} {
		if err := sys.FailDevice(dev); err == nil {
			t.Fatalf("FailDevice(%d) succeeded on a 3-device pool", dev)
		}
	}
	if sys.DeviceFailed(1) {
		t.Fatal("device 1 failed before FailDevice")
	}
	if err := sys.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	if !sys.DeviceFailed(1) || sys.DeviceFailed(0) || sys.DeviceFailed(2) {
		t.Fatalf("failed states = %v %v %v, want false true false",
			sys.DeviceFailed(0), sys.DeviceFailed(1), sys.DeviceFailed(2))
	}

	// Checkpoints ingest on device 0, so losing device 1 must not
	// break the checkpoint/restore path.
	fn := deployWarm(t, sys, "Float")
	ck, err := sys.Checkpoint(fn, CXLfork, "ck-after-loss")
	if err != nil {
		t.Fatal(err)
	}
	clone, err := sys.Restore(1, ck, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clone.Invoke(); err != nil {
		t.Fatal(err)
	}

	// Killing the ingest device makes new checkpoints fail with the
	// typed sentinel.
	if err := sys.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Checkpoint(fn, CXLfork, "ck-dead-ingest"); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("checkpoint on dead ingest device: %v, want ErrDeviceFailed", err)
	}
}

func TestDeviceLossFaultFiresOnTheClock(t *testing.T) {
	sys := NewSystem(poolConfig())
	sys.InjectFault(FaultRule{Kind: DeviceLoss, Device: 2, At: 5 * 1000 * 1000}) // 5ms
	if sys.DeviceFailed(2) {
		t.Fatal("device 2 failed before its At offset")
	}
	sys.Sleep(2 * time.Millisecond)
	if sys.DeviceFailed(2) {
		t.Fatal("device 2 failed 3ms early")
	}
	sys.Sleep(10 * time.Millisecond)
	if !sys.DeviceFailed(2) {
		t.Fatal("device 2 still healthy after its loss offset elapsed")
	}
	if got := sys.FaultStats().Injected; got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	// The loss is terminal and idempotent: a second rule for the same
	// device changes nothing.
	sys.InjectFault(FaultRule{Kind: DeviceLoss, Device: 2, At: 0})
	sys.Sleep(time.Millisecond)
	if got := sys.FaultStats().Injected; got != 1 {
		t.Fatalf("duplicate loss re-counted: Injected = %d, want 1", got)
	}
}

func TestPoolMemoryAccountingSkipsDeadDevices(t *testing.T) {
	sys := NewSystem(poolConfig())
	fn := deployWarm(t, sys, "Float")
	ck, err := sys.Checkpoint(fn, CXLfork, "ck")
	if err != nil {
		t.Fatal(err)
	}
	used := sys.CXLMemoryUsed()
	if used < ck.CXLBytes() {
		t.Fatalf("pool used %d < checkpoint %d", used, ck.CXLBytes())
	}
	// Device 0 holds the checkpoint; failing an empty device must not
	// change the healthy-occupancy aggregate.
	if err := sys.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	if got := sys.CXLMemoryUsed(); got != used {
		t.Fatalf("pool used changed %d -> %d after losing an empty device", used, got)
	}
}
