package cxlfork

import (
	"errors"
	"testing"
	"time"
)

// TestDeployFunctionRejectsBadNode covers the facade hardening: node
// indexes out of range return errors instead of panicking.
func TestDeployFunctionRejectsBadNode(t *testing.T) {
	sys := NewSystem(smallConfig())
	for _, node := range []int{-1, sys.Nodes(), sys.Nodes() + 5} {
		if _, err := sys.DeployFunction(node, "Float"); err == nil {
			t.Fatalf("DeployFunction(%d) succeeded on a %d-node system", node, sys.Nodes())
		}
	}
	if _, err := sys.DeployFunction(0, "Float"); err != nil {
		t.Fatalf("in-range deploy failed: %v", err)
	}
}

func TestRestoreRejectsBadNode(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Float")
	ck, err := sys.Checkpoint(fn, CXLfork, "ck")
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []int{-1, sys.Nodes()} {
		if _, err := sys.Restore(node, ck, RestoreOptions{}); err == nil {
			t.Fatalf("Restore(%d) succeeded on a %d-node system", node, sys.Nodes())
		}
	}
	if _, err := sys.Restore(1, ck, RestoreOptions{}); err != nil {
		t.Fatalf("in-range restore failed: %v", err)
	}
}

// TestFacadeFaultAPI drives the public fault-injection surface
// end-to-end: crash during checkpoint, device recovery, revive, retry.
func TestFacadeFaultAPI(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Float")

	sys.InjectFault(FaultRule{Kind: CrashNode, Step: StepCheckpointGlobal, Node: 0})
	_, err := sys.Checkpoint(fn, CXLfork, "doomed")
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("checkpoint on crashing node: got %v, want ErrNodeDown", err)
	}
	if !sys.NodeIsDown(0) {
		t.Fatal("NodeIsDown(0) = false after crash")
	}
	st := sys.RecoverDevice()
	if st.Arenas != 1 || st.Total() <= 0 {
		t.Fatalf("RecoverDevice = %+v, want one torn arena", st)
	}

	sys.ReviveNode(0)
	if sys.NodeIsDown(0) {
		t.Fatal("node still down after ReviveNode")
	}
	ck, err := sys.Checkpoint(fn, CXLfork, "retry")
	if err != nil {
		t.Fatalf("checkpoint after revive: %v", err)
	}
	if _, err := sys.Restore(1, ck, RestoreOptions{}); err != nil {
		t.Fatalf("restore after recovery: %v", err)
	}

	fs := sys.FaultStats()
	if fs.Injected != 1 {
		t.Fatalf("Injected = %d, want 1", fs.Injected)
	}
	if fs.RecoveredBytes != st.Total() {
		t.Fatalf("RecoveredBytes = %d, recovered %d", fs.RecoveredBytes, st.Total())
	}
}

// TestFaultReplayIsDeterministic runs the same corruption scenario
// twice under one seed and checks identical outcomes and virtual times.
func TestFaultReplayIsDeterministic(t *testing.T) {
	run := func() (time.Duration, error) {
		cfg := smallConfig()
		cfg.Seed = 99
		sys := NewSystem(cfg)
		fn := deployWarm(t, sys, "Float")
		sys.InjectFault(FaultRule{Kind: CorruptBlob, Step: StepCheckpointGlobal, Node: AnyNode})
		ck, err := sys.Checkpoint(fn, CXLfork, "poisoned")
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := sys.Restore(1, ck, RestoreOptions{})
		return sys.Now(), rerr
	}
	t1, err1 := run()
	t2, err2 := run()
	if !errors.Is(err1, ErrImageCorrupt) {
		t.Fatalf("corrupted restore: got %v, want ErrImageCorrupt", err1)
	}
	if t1 != t2 {
		t.Fatalf("virtual times differ: %v vs %v", t1, t2)
	}
	if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
		t.Fatalf("outcomes differ: %v vs %v", err1, err2)
	}
}

func TestDegradeFabricSlowsCheckpoint(t *testing.T) {
	elapsed := func(degrade bool) time.Duration {
		sys := NewSystem(smallConfig())
		fn := deployWarm(t, sys, "Float")
		if degrade {
			sys.DegradeFabric(6, time.Hour)
		}
		start := sys.Now()
		if _, err := sys.Checkpoint(fn, CXLfork, "ck"); err != nil {
			t.Fatal(err)
		}
		return sys.Now() - start
	}
	slow, fast := elapsed(true), elapsed(false)
	if slow <= fast {
		t.Fatalf("degraded checkpoint %v not slower than %v", slow, fast)
	}
}
