module cxlfork

go 1.22
