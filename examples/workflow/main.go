// Workflow: passing intermediate payloads between chained serverless
// functions (the paper's §8 extension). By-value staging copies the
// payload into every stage's local DRAM; by-reference communication
// publishes it once into shared CXL memory and lets every stage map the
// same frames — zero copies, minimal local memory, pure fabric reads.
package main

import (
	"fmt"
	"log"
	"time"

	"cxlfork"
)

func main() {
	const stages = 4
	fmt.Printf("%d-stage function chain, payload handed stage-to-stage across nodes\n\n", stages)
	fmt.Printf("%-10s %-14s %12s %12s %12s\n",
		"payload", "transport", "latency", "copied", "fabric")

	for _, mb := range []int64{1, 4, 16, 64} {
		for _, tr := range []cxlfork.WorkflowTransport{cxlfork.PassByValue, cxlfork.PassByReference} {
			sys := cxlfork.NewSystem(cxlfork.DefaultConfig())
			res, err := sys.RunWorkflowChain(stages, mb<<20, tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-14s %12v %9dMB %9dMB\n",
				fmt.Sprintf("%dMB", mb), res.Transport,
				res.Latency.Round(time.Microsecond),
				res.LocalBytesCopied>>20, res.FabricBytes>>20)
		}
	}
	fmt.Println("\nby-reference keeps every hop zero-copy: stages read the producer's CXL")
	fmt.Println("frames directly, so local memory stays flat while by-value pays a full")
	fmt.Println("payload copy per consuming stage.")
}
