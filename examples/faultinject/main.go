// Fault injection: crash a node mid-checkpoint, garbage-collect the
// torn image, retry on a surviving node, and detect a silently
// corrupted checkpoint — the fork fabric's failure model end to end.
// Everything replays bit-identically under the same Config.Seed.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"cxlfork"
)

func main() {
	cfg := cxlfork.DefaultConfig()
	cfg.Seed = 42
	sys := cxlfork.NewSystem(cfg)

	bert, err := sys.DeployFunction(0, "Bert")
	if err != nil {
		log.Fatal(err)
	}
	if err := bert.Warmup(16); err != nil {
		log.Fatal(err)
	}

	// Schedule node 0 to die right before the checkpoint's publication
	// commit: after the page tables are copied, before the global-state
	// seal. The checkpoint is torn, not published.
	sys.InjectFault(cxlfork.FaultRule{
		Kind: cxlfork.CrashNode,
		Step: cxlfork.StepCheckpointGlobal,
		Node: 0,
	})
	_, err = sys.Checkpoint(bert, cxlfork.CXLfork, "bert-v1")
	fmt.Printf("checkpoint on crashing node: %v\n", err)
	if !errors.Is(err, cxlfork.ErrNodeDown) {
		log.Fatalf("expected ErrNodeDown, got %v", err)
	}
	fmt.Printf("node 0 down: %v, device holds %d KB of torn state\n",
		sys.NodeIsDown(0), sys.CXLMemoryUsed()>>10)

	// Crash-consistent recovery: unsealed arenas are debris, never
	// restorable; Recover reclaims 100% of them.
	st := sys.RecoverDevice()
	fmt.Printf("recovered %d torn arena(s): %d KB metadata + %d KB frames; device now %d KB\n",
		st.Arenas, st.MetaBytes>>10, st.FrameBytes>>10, sys.CXLMemoryUsed()>>10)

	// The node comes back (its tasks are gone), and the retried
	// checkpoint publishes — this time under a degraded fabric, which
	// slows the copies but cannot fail them.
	sys.ReviveNode(0)
	sys.DegradeFabric(4, 50*time.Millisecond)
	t0 := sys.Now()
	ck, err := sys.Checkpoint(bert, cxlfork.CXLfork, "bert-v2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retried checkpoint published in %v under a 4x-degraded fabric\n", sys.Now()-t0)

	clone, err := sys.Restore(1, ck, cxlfork.RestoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clone.Invoke(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clone restored and invoked on node 1")

	// Silent corruption: flip one seeded-random bit in the next
	// checkpoint's global-state record. The checksummed envelope catches
	// it at restore time, before the child is touched.
	sys.InjectFault(cxlfork.FaultRule{
		Kind:   cxlfork.CorruptBlob,
		Step:   cxlfork.StepCheckpointGlobal,
		Target: "bert-v3",
	})
	bad, err := sys.Checkpoint(bert, cxlfork.CXLfork, "bert-v3")
	if err != nil {
		log.Fatal(err)
	}
	_, err = sys.Restore(1, bad, cxlfork.RestoreOptions{})
	fmt.Printf("restore of corrupted image: %v\n", err)
	if !errors.Is(err, cxlfork.ErrImageCorrupt) {
		log.Fatalf("expected ErrImageCorrupt, got %v", err)
	}

	fs := sys.FaultStats()
	fmt.Printf("fault stats: %d injected, %d retries, %d fallbacks, %d KB recovered\n",
		fs.Injected, fs.Retries, fs.Fallbacks, fs.RecoveredBytes>>10)
}
