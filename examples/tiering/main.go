// Tiering: the trade-off between local memory and execution speed when
// restoring a large-footprint function (paper §4.3, Fig. 8). BERT's
// read-only working set exceeds the 64 MB LLC, so where its pages live
// matters: migrate-on-write keeps them on CXL (frugal, slower warm
// runs), migrate-on-access copies everything local (fast, fat), hybrid
// tiering uses the checkpointed Access bits to fetch only the hot set.
package main

import (
	"fmt"
	"log"
	"time"

	"cxlfork"
)

func main() {
	sys := cxlfork.NewSystem(cxlfork.DefaultConfig())

	bert, err := sys.DeployFunction(0, "Bert")
	if err != nil {
		log.Fatal(err)
	}
	// Warmup shapes the A/D bits: the checkpoint records which pages the
	// steady state actually touches — that is what hybrid tiering reads.
	if err := bert.Warmup(16); err != nil {
		log.Fatal(err)
	}
	ck, err := sys.Checkpoint(bert, cxlfork.CXLfork, "bert-tiering")
	if err != nil {
		log.Fatal(err)
	}
	bert.Exit()

	fmt.Printf("%-18s %12s %12s %12s %12s\n",
		"policy", "restore", "cold invoke", "warm invoke", "local MB")
	for _, pol := range []cxlfork.TieringPolicy{
		cxlfork.MigrateOnWrite, cxlfork.MigrateOnAccess, cxlfork.HybridTiering,
	} {
		t0 := sys.Now()
		clone, err := sys.Restore(1, ck, cxlfork.RestoreOptions{Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		restore := sys.Now() - t0
		cold, err := clone.Invoke()
		if err != nil {
			log.Fatal(err)
		}
		var warm time.Duration
		for i := 0; i < 3; i++ {
			warm, err = clone.Invoke()
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-18s %12v %12v %12v %12d\n",
			pol, restore.Round(time.Microsecond), cold.Round(time.Millisecond),
			warm.Round(time.Millisecond), clone.ResidentLocalBytes()>>20)
		clone.Exit()
	}

	// The user-driven interface: clear the A bits and let future clones
	// re-learn the hot set from live traffic (§4.3).
	n, err := ck.ClearAccessBits()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncleared %d checkpointed A bits; attached clones will re-mark the hot set\n", n)
}
