// Quickstart: clone a warmed serverless function across nodes with
// CXLfork and compare against a fresh cold start — the paper's core
// promise in ~50 lines (checkpoint once, restore anywhere, share
// read-only state over the CXL fabric).
//
// For the served path — the same simulations behind an HTTP API with
// streaming telemetry — see examples/served/walkthrough.sh and
// docs/API.md.
package main

import (
	"fmt"
	"log"

	"cxlfork"
)

func main() {
	sys := cxlfork.NewSystem(cxlfork.DefaultConfig())

	// Cold-start BERT on node 0 and warm it to JIT steady state.
	t0 := sys.Now()
	bert, err := sys.DeployFunction(0, "Bert")
	if err != nil {
		log.Fatal(err)
	}
	coldStart := sys.Now() - t0
	if err := bert.Warmup(16); err != nil {
		log.Fatal(err)
	}
	warm, err := bert.Invoke()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 0: cold start %v, warm invocation %v\n", coldStart, warm)

	// Checkpoint into shared CXL memory. The checkpoint is decoupled
	// from node 0: the parent can exit.
	ck, err := sys.Checkpoint(bert, cxlfork.CXLfork, "bert-v1")
	if err != nil {
		log.Fatal(err)
	}
	info := ck.Describe()
	fmt.Printf("checkpoint: %d pages (%d dirty, %d file-backed), %d VMAs, %d PT leaves, %d MB on CXL\n",
		info.DataPages, info.DirtyPages, info.FilePages, info.VMAs,
		info.PageTableLeaves, info.CXLBytes>>20)
	bert.Exit()

	// Remote fork onto node 1: attach the checkpointed page-table and
	// VMA leaves, reopen descriptors, go.
	t0 = sys.Now()
	clone, err := sys.Restore(1, ck, cxlfork.RestoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	restore := sys.Now() - t0
	first, err := clone.Invoke()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1: restore %v, first invocation %v (vs %v cold start)\n",
		restore, first, coldStart)
	fmt.Printf("node 1: clone keeps %d MB local, shares %d MB from CXL; faults: %v\n",
		clone.ResidentLocalBytes()>>20, clone.ResidentCXLBytes()>>20, clone.FaultCounts())

	// A second clone on node 0 shares the same CXL-resident state:
	// cluster-wide deduplication.
	clone2, err := sys.Restore(0, ck, cxlfork.RestoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clone2.Invoke(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two clones alive: %d MB on the device total (deduplicated), local: node0 %d MB extra, node1 %d MB extra\n",
		sys.CXLMemoryUsed()>>20, clone2.ResidentLocalBytes()>>20, clone.ResidentLocalBytes()>>20)
}
