#!/usr/bin/env bash
# Walkthrough for the cxlserved live serving mode: start the server,
# stream a capacity-planning session, poll an async one, scrape the
# server metrics, and shut down gracefully. Every request here is the
# quickstart from README.md / docs/API.md; CI runs this script verbatim
# as the cxlserved smoke job. Run from the repo root:
#
#   ./examples/served/walkthrough.sh
set -euo pipefail
cd "$(dirname "$0")/../.."

PORT="${PORT:-8080}"
BASE="http://127.0.0.1:${PORT}"
BIN="${TMPDIR:-/tmp}/cxlserved-walkthrough"

go build -o "${BIN}" ./cmd/cxlserved
"${BIN}" -addr "127.0.0.1:${PORT}" -max-sessions 2 -drain 30s &
SERVED_PID=$!
trap 'kill "${SERVED_PID}" 2>/dev/null || true' EXIT

# Wait for the server to come up.
for _ in $(seq 1 50); do
  curl -sf "${BASE}/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "${BASE}/healthz"

# Discover what the server accepts.
curl -sf "${BASE}/v1/designs"
echo

# Stream a small Fig. 10-style what-if inline: NDJSON frames — hello,
# one sample per telemetry tick, SLO alerts, the result, then eof.
STREAM="$(curl -sf -N -X POST "${BASE}/v1/sessions?stream=1" \
  --data-binary @examples/served/spec.json)"
echo "${STREAM}" | head -n 2
echo "..."
echo "${STREAM}" | tail -n 2
test -n "${STREAM}"
echo "${STREAM}" | head -n 1 | grep -q '"type":"hello"'
echo "${STREAM}" | tail -n 1 | grep -q '"type":"eof"'
echo "${STREAM}" | tail -n 1 | grep -q '"reason":"complete"'

# Submit asynchronously (202 + session id), then poll until done.
REPLY="$(curl -sf -X POST "${BASE}/v1/sessions" \
  --data-binary @examples/served/spec.json)"
echo "${REPLY}"
SID="$(echo "${REPLY}" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
for _ in $(seq 1 100); do
  STATUS="$(curl -sf "${BASE}/v1/sessions/${SID}")"
  echo "${STATUS}" | grep -q '"state":"done"' && break
  sleep 0.2
done
echo "${STATUS}" | grep -q '"state":"done"'
echo "${STATUS}" | grep -q '"fingerprint"'

# Scrape the server-side metrics (Prometheus text format).
curl -sf "${BASE}/metricz" | grep -E '^cxlserved_sessions_completed_total 2 [0-9]+$'

# Graceful shutdown: SIGTERM drains in-flight sessions and exits 0.
kill -TERM "${SERVED_PID}"
wait "${SERVED_PID}"
trap - EXIT
echo "cxlserved walkthrough: OK"
