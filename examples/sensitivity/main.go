// Sensitivity: how CXLfork behaves as CXL devices get faster (paper
// §7.1, Fig. 9). The simulated device latency is swept from today's
// FPGA prototype (≈400 ns) down to local-DRAM territory (100 ns); BFS —
// whose read-only working set misses the LLC — converges on local-fork
// performance, while a cache-resident function never felt the fabric.
package main

import (
	"fmt"
	"log"
	"time"

	"cxlfork"
)

func run(name string, latency time.Duration) (warm time.Duration, localBytes int64) {
	cfg := cxlfork.DefaultConfig()
	cfg.CXLLatency = latency
	sys := cxlfork.NewSystem(cfg)

	fn, err := sys.DeployFunction(0, name)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn.Warmup(16); err != nil {
		log.Fatal(err)
	}
	ck, err := sys.Checkpoint(fn, cxlfork.CXLfork, name+"-sweep")
	if err != nil {
		log.Fatal(err)
	}
	fn.Exit()
	clone, err := sys.Restore(1, ck, cxlfork.RestoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		warm, err = clone.Invoke()
		if err != nil {
			log.Fatal(err)
		}
	}
	return warm, clone.ResidentLocalBytes()
}

func main() {
	latencies := []time.Duration{400, 300, 200, 100} // nanoseconds
	for _, name := range []string{"Json", "BFS"} {
		fmt.Printf("%s (migrate-on-write, read-only state stays on CXL):\n", name)
		var base time.Duration
		for i, lat := range latencies {
			warm, local := run(name, lat*time.Nanosecond)
			if i == 0 {
				base = warm
			}
			fmt.Printf("  CXL %3dns: warm %10v (%.2fx of 400ns), %3d MB local\n",
				lat, warm.Round(time.Microsecond), float64(warm)/float64(base), local>>20)
		}
		fmt.Println()
	}
	fmt.Println("Json's working set fits the 64MB LLC, so fabric latency is invisible;")
	fmt.Println("BFS streams 75MB of graph from CXL every request and tracks the device speed.")
}
