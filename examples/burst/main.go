// Burst: CXLporter absorbing a load spike (paper §5, §7.2). The same
// bursty Azure-like trace is replayed against the autoscaler configured
// with each remote-fork design; CXLfork's fast restores into ghost
// containers keep tail latency near warm-execution time while CRIU pays
// container creation plus full-image deserialization on every scale-out.
package main

import (
	"fmt"
	"log"
	"time"

	"cxlfork"
)

func main() {
	mix := []string{"Float", "Json", "Chameleon", "HTML", "Rnn"}
	fmt.Printf("replaying a 150 RPS bursty trace over %v\n\n", mix)
	fmt.Printf("%-12s %10s %10s %8s %8s %8s %8s\n",
		"design", "P50", "P99", "warm", "forks", "evicted", "promoted")

	for _, mech := range []cxlfork.MechanismKind{
		cxlfork.CRIUCXL, cxlfork.MitosisCXL, cxlfork.CXLfork,
	} {
		// Fresh system per design: same seed, same trace.
		sys := cxlfork.NewSystem(cxlfork.DefaultConfig())
		res, err := sys.RunAutoscaler(cxlfork.AutoscalerConfig{
			Mechanism:      mech,
			DynamicTiering: mech == cxlfork.CXLfork,
			Functions:      mix,
			RPS:            150,
			Duration:       20 * time.Second,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10v %10v %8d %8d %8d %8d\n",
			mech, res.P50.Round(time.Millisecond), res.P99.Round(time.Millisecond),
			res.WarmStarts, res.ColdForks, res.Evictions, res.Promotions)
	}
}
