package cxlfork

import (
	"time"

	"cxlfork/internal/workflow"
)

// WorkflowTransport selects how chained functions pass payloads
// (the §8 FaaS-workflow extension).
type WorkflowTransport int

// Workflow transports.
const (
	// PassByValue copies the payload into each stage's local memory.
	PassByValue WorkflowTransport = iota
	// PassByReference shares the payload via CXL mappings, zero-copy.
	PassByReference
)

func (t WorkflowTransport) String() string {
	return workflow.Transport(t).String()
}

// WorkflowResult summarizes one chain execution.
type WorkflowResult struct {
	Transport WorkflowTransport
	Stages    int
	// PayloadBytes is the inter-stage payload size.
	PayloadBytes int64
	// Latency is the end-to-end communication latency of the chain.
	Latency time.Duration
	// LocalBytesCopied is payload data landed in node-local DRAM.
	LocalBytesCopied int64
	// FabricBytes is CXL read+write traffic.
	FabricBytes int64
}

// RunWorkflowChain executes an n-stage function chain passing a payload
// of the given size between stages on alternating nodes, and reports
// the communication cost under the chosen transport. Stages' compute is
// excluded to isolate data movement — the quantity the §8 discussion is
// about.
func (s *System) RunWorkflowChain(stages int, payloadBytes int64, tr WorkflowTransport) (WorkflowResult, error) {
	pages := int((payloadBytes + int64(s.c.P.PageSize) - 1) / int64(s.c.P.PageSize))
	if pages < 1 {
		pages = 1
	}
	res, err := workflow.RunChain(s.c, stages, pages, workflow.Transport(tr))
	if err != nil {
		return WorkflowResult{}, err
	}
	return WorkflowResult{
		Transport:        tr,
		Stages:           res.Stages,
		PayloadBytes:     int64(res.Pages) * int64(s.c.P.PageSize),
		Latency:          time.Duration(res.Latency),
		LocalBytesCopied: int64(res.LocalPagesCopied) * int64(s.c.P.PageSize),
		FabricBytes:      res.FabricBytes,
	}, nil
}
