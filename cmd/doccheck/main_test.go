package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, name, content string) {
	t.Helper()
	path := filepath.Join(root, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPackageCommentMissing(t *testing.T) {
	root := t.TempDir()
	write(t, root, "good/doc.go", "// Package good is documented.\npackage good\n")
	write(t, root, "good/code.go", "package good\n")
	write(t, root, "bad/code.go", "package bad\n")

	problems := checkPackageComments(root)
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want exactly the bad package", problems)
	}
	if !strings.Contains(problems[0], "package bad has no package comment") {
		t.Fatalf("unexpected problem: %s", problems[0])
	}
}

func TestPackageCommentAnywhereInPackage(t *testing.T) {
	root := t.TempDir()
	// The comment need not live in doc.go.
	write(t, root, "p/p.go", "// Package p is documented here.\npackage p\n")
	if problems := checkPackageComments(root); len(problems) != 0 {
		t.Fatalf("problems = %v", problems)
	}
}

func TestMarkdownBrokenLinkAndAnchor(t *testing.T) {
	root := t.TempDir()
	write(t, root, "README.md", strings.Join([]string{
		"# Title",
		"## Real Section",
		"[ok](DESIGN.md) [gone](NOPE.md)",
		"[jump](#real-section) [nowhere](#fake-section)",
		"[ext](https://example.com/x)",
	}, "\n"))
	write(t, root, "DESIGN.md", "# D\n## 1. Model\n")

	problems := checkMarkdown(root)
	var got []string
	for _, p := range problems {
		got = append(got, p)
	}
	if len(got) != 2 {
		t.Fatalf("problems = %v, want broken file link + broken anchor", got)
	}
	if !strings.Contains(got[0], "NOPE.md") || !strings.Contains(got[1], "#fake-section") {
		t.Fatalf("unexpected problems: %v", got)
	}
}

func TestDesignSectionCrossReferences(t *testing.T) {
	root := t.TempDir()
	write(t, root, "DESIGN.md", "# D\n## 1. Model\n## 2. Inventory\n")
	write(t, root, "README.md", "see DESIGN.md §2 and DESIGN.md §9\n")

	problems := checkMarkdown(root)
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want exactly the stale §9", problems)
	}
	if !strings.Contains(problems[0], "§9") {
		t.Fatalf("unexpected problem: %s", problems[0])
	}
}

func TestGithubAnchor(t *testing.T) {
	cases := map[string]string{
		"Real Section":                 "real-section",
		"Figure 10 — CXLporter":        "figure-10--cxlporter",
		"Capacity sweep (`-exp cap`)":  "capacity-sweep--exp-cap",
		"8. Parallel copy lanes, etc.": "8-parallel-copy-lanes-etc",
	}
	for in, want := range cases {
		if got := githubAnchor(in); got != want {
			t.Errorf("githubAnchor(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRepositoryIsClean runs the real checks against this repository:
// the docs job must stay green.
func TestRepositoryIsClean(t *testing.T) {
	root := "../.."
	if p := checkPackageComments(root); len(p) != 0 {
		t.Fatalf("package comments: %v", p)
	}
	if p := checkMarkdown(root); len(p) != 0 {
		t.Fatalf("markdown: %v", p)
	}
}
