// Command doccheck enforces the repository's documentation invariants.
// CI runs it as the docs job; it exits non-zero listing every problem.
//
// Four checks:
//
//  1. Every Go package (root, internal/..., cmd/..., examples/...) has
//     a package comment — godoc's first requirement, and this repo's
//     convention is to keep it in a doc.go per package.
//
//  2. Every relative markdown link in the checked documents resolves
//     to an existing file (relative to the document's own directory),
//     and every intra-document anchor to an existing heading. External
//     http(s) links are not fetched.
//
//  3. Every "DESIGN.md §N" style cross-reference names a section that
//     actually exists (a "## N." heading), so doc comments and the
//     markdown stay in sync when sections are renumbered.
//
//  4. Packages listed in exportedDocPackages are held to a stricter
//     bar: every exported symbol (type, func, method, var, const) has
//     its own doc comment, not just the package.
//
// Usage: go run ./cmd/doccheck [-root dir]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// markdownDocs are the documents whose links and cross-references are
// checked. Package comments are checked for every package regardless.
var markdownDocs = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md", "PAPER.md", "docs/API.md"}

// exportedDocPackages are checked symbol-by-symbol (check 4). The
// serving layer is API surface for HTTP clients and the facade alike,
// so its godoc must be complete; the attribution report is serialized
// to those same clients, so internal/xray is held to the same bar.
var exportedDocPackages = []string{"internal/serve", "internal/xray"}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	problems = append(problems, checkPackageComments(*root)...)
	problems = append(problems, checkMarkdown(*root)...)
	problems = append(problems, checkExportedDocs(*root)...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkPackageComments walks every Go package under root and reports
// packages without a package comment.
func checkPackageComments(root string) []string {
	var problems []string
	dirs := map[string]bool{}
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return nil
		}
		if info.IsDir() {
			name := info.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})

	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	for _, dir := range sorted {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
			}
		}
	}
	return problems
}

var (
	// [text](target) — inline links only; reference-style links are not
	// used in this repo.
	mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// DESIGN.md §N cross-references (also bare §N inside DESIGN.md
	// would be ambiguous with paper sections, so only the qualified
	// form is checked).
	designRef = regexp.MustCompile(`DESIGN\.md §(\d+)`)
	mdHeading = regexp.MustCompile(`(?m)^(#{1,6})\s+(.+)$`)
)

// checkMarkdown verifies relative links, intra-document anchors, and
// DESIGN.md § cross-references in the top-level documents.
func checkMarkdown(root string) []string {
	var problems []string

	designSections := map[string]bool{}
	if b, err := os.ReadFile(filepath.Join(root, "DESIGN.md")); err == nil {
		for _, m := range mdHeading.FindAllStringSubmatch(string(b), -1) {
			// "## 7. Failure model" registers section 7.
			title := m[2]
			if i := strings.IndexByte(title, '.'); i > 0 {
				designSections[strings.TrimSpace(title[:i])] = true
			}
		}
	}

	for _, doc := range markdownDocs {
		path := filepath.Join(root, doc)
		b, err := os.ReadFile(path)
		if err != nil {
			continue // optional document
		}
		text := string(b)

		anchors := map[string]bool{}
		for _, m := range mdHeading.FindAllStringSubmatch(text, -1) {
			anchors[githubAnchor(m[2])] = true
		}

		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "#"):
				if !anchors[strings.TrimPrefix(target, "#")] {
					problems = append(problems, fmt.Sprintf("%s: broken anchor link %q", doc, target))
				}
			default:
				file := target
				if i := strings.IndexByte(file, '#'); i >= 0 {
					file = file[:i]
				}
				if file == "" {
					continue
				}
				// Relative links resolve against the document's own
				// directory (docs/API.md links differently than README.md).
				if _, err := os.Stat(filepath.Join(filepath.Dir(path), filepath.FromSlash(file))); err != nil {
					problems = append(problems, fmt.Sprintf("%s: broken link %q", doc, target))
				}
			}
		}

		for _, m := range designRef.FindAllStringSubmatch(text, -1) {
			if !designSections[m[1]] {
				problems = append(problems, fmt.Sprintf("%s: stale reference DESIGN.md §%s (no such section)", doc, m[1]))
			}
		}
	}
	return problems
}

// checkExportedDocs enforces check 4: in the listed packages, every
// exported symbol carries a doc comment. A declaration group's comment
// covers its specs, and a spec's own doc or trailing line comment also
// counts — the same places godoc looks.
func checkExportedDocs(root string) []string {
	var problems []string
	fset := token.NewFileSet()
	for _, rel := range exportedDocPackages {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", rel, err))
			continue
		}
		var pkgNames []string
		for name := range pkgs {
			pkgNames = append(pkgNames, name)
		}
		sort.Strings(pkgNames)
		for _, pkgName := range pkgNames {
			pkg := pkgs[pkgName]
			var files []string
			for f := range pkg.Files {
				files = append(files, f)
			}
			sort.Strings(files)
			for _, fname := range files {
				relFile := filepath.ToSlash(filepath.Join(rel, filepath.Base(fname)))
				for _, decl := range pkg.Files[fname].Decls {
					problems = append(problems, undocumentedExports(relFile, decl)...)
				}
			}
		}
	}
	return problems
}

// undocumentedExports reports the exported names in one top-level
// declaration that lack a doc comment.
func undocumentedExports(file string, decl ast.Decl) []string {
	var problems []string
	gap := func(kind, name string) string {
		return fmt.Sprintf("%s: exported %s %s has no doc comment", file, kind, name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			problems = append(problems, gap(kind, d.Name.Name))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					problems = append(problems, gap("type", sp.Name.Name))
				}
			case *ast.ValueSpec:
				covered := d.Doc != nil || sp.Doc != nil || sp.Comment != nil
				for _, n := range sp.Names {
					if n.IsExported() && !covered {
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						problems = append(problems, gap(kind, n.Name))
					}
				}
			}
		}
	}
	return problems
}

// githubAnchor converts a heading to GitHub's anchor slug: lowercase,
// spaces to dashes, punctuation dropped.
func githubAnchor(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}
