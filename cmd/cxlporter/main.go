// Command cxlporter runs one CXLporter scaling scenario: it deploys the
// autoscaler with a chosen remote-fork design over a two-node simulated
// cluster, replays a bursty Azure-like trace, and prints latency
// percentiles and scheduler statistics.
//
// Usage:
//
//	cxlporter -mech cxlfork -rps 150 -duration 30 -mem 0.25
//	cxlporter -mech criu -functions Float,Json,Bert
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cxlfork"
)

func main() {
	mech := flag.String("mech", "cxlfork", "rfork design: cxlfork, cxlfork-mow, criu, mitosis")
	rps := flag.Float64("rps", 150, "aggregate request rate")
	duration := flag.Float64("duration", 30, "trace duration in virtual seconds")
	memFrac := flag.Float64("mem", 1.0, "node memory budget as a fraction of 12 GB")
	functions := flag.String("functions", "", "comma-separated workload mix (default: full suite)")
	seed := flag.Int64("seed", 7, "trace seed")
	traceIn := flag.String("trace", "", "replay an explicit trace from a seconds,function CSV file")
	traceOut := flag.String("save-trace", "", "write the generated trace to a CSV file and exit")
	flag.Parse()

	cfg := cxlfork.AutoscalerConfig{
		RPS:        *rps,
		Duration:   time.Duration(*duration * float64(time.Second)),
		NodeBudget: int64(*memFrac * float64(12<<30)),
		Seed:       *seed,
	}
	if *functions != "" {
		cfg.Functions = strings.Split(*functions, ",")
	}
	switch *mech {
	case "cxlfork":
		cfg.Mechanism = cxlfork.CXLfork
		cfg.DynamicTiering = true
	case "cxlfork-mow":
		cfg.Mechanism = cxlfork.CXLfork
		pol := cxlfork.MigrateOnWrite
		cfg.StaticPolicy = &pol
	case "criu":
		cfg.Mechanism = cxlfork.CRIUCXL
	case "mitosis":
		cfg.Mechanism = cxlfork.MitosisCXL
	default:
		fmt.Fprintf(os.Stderr, "cxlporter: unknown mechanism %q\n", *mech)
		os.Exit(2)
	}

	if *traceOut != "" {
		fns := cxlfork.FunctionNames()
		if *functions != "" {
			fns = strings.Split(*functions, ",")
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlporter: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := cxlfork.SaveTraceCSV(f, fns, *rps, cfg.Duration, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cxlporter: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace to %s\n", *traceOut)
		return
	}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlporter: %v\n", err)
			os.Exit(1)
		}
		trace, err := cxlfork.LoadTraceCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlporter: %v\n", err)
			os.Exit(1)
		}
		cfg.Trace = trace
	}

	sys := cxlfork.NewSystem(cxlfork.DefaultConfig())
	fmt.Printf("calibrating profiles and replaying %.0f RPS for %.0fs with %s (mem budget %.0f%%)...\n",
		*rps, *duration, cfg.Mechanism, 100**memFrac)
	res, err := sys.RunAutoscaler(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlporter: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\ncompleted %d requests  P50 %v  P99 %v  mean %v\n",
		res.Completed, res.P50.Round(time.Millisecond), res.P99.Round(time.Millisecond),
		res.Mean.Round(time.Millisecond))
	fmt.Printf("warm starts %d, checkpoint restores %d, scratch cold starts %d\n",
		res.WarmStarts, res.ColdForks, res.ScratchCold)
	fmt.Printf("evictions %d, tiering promotions %d, throughput %.1f req/s\n",
		res.Evictions, res.Promotions, res.Throughput)
	fmt.Println("\nper-function P99:")
	for fn, p99 := range res.PerFunctionP99 {
		fmt.Printf("  %-10s %v\n", fn, p99.Round(time.Millisecond))
	}
}
