// Command cxlsim regenerates the paper's tables and figures from the
// simulated platform. Each experiment prints the same rows/series the
// paper reports (see DESIGN.md §3 for the index).
//
// Usage:
//
//	cxlsim -exp fig7a            # one experiment
//	cxlsim -exp all              # everything (slow)
//	cxlsim -exp fig1 -invocations 32
//	cxlsim -exp fig10 -rps 150 -duration 60
//	cxlsim -exp slo -telemetry      # burn-rate alerts driving reclaim
//	cxlsim -exp parbench -workers 8 # sharded-engine sweep (DESIGN.md §13)
//	cxlsim -exp fabric -workers 8   # topology sweep (DESIGN.md §14)
//	cxlsim -exp xray                # critical-path blame (DESIGN.md §16)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cxlfork/internal/des"
	"cxlfork/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id: table1, fig1, fig3c, fig6, fig7a, fig7b, fig8, fig9, fig10, ckpt, faults, scale, workflow, lanes, capacity, slo, chaos, parbench, fabric, xray, all")
	lanesFn := flag.String("lanes-fn", "Float", "lanes: function to sweep")
	invocations := flag.Int("invocations", 128, "fig1: invocations per function")
	rps := flag.Float64("rps", 150, "fig10/capacity/slo: aggregate request rate")
	duration := flag.Float64("duration", 60, "fig10/capacity/slo: trace duration in seconds")
	telem := flag.Bool("telemetry", false, "enable virtual-time metric sampling (DESIGN.md §11)")
	workers := flag.Int("workers", 1, "simulation workers (DESIGN.md §13); results are byte-identical at any count")
	nodes := flag.Int("nodes", 64, "parbench: simulated node count")
	flag.Parse()

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	p := experiments.ExpParams()
	if *telem {
		p.TelemetryEnabled = true
	}
	if *workers > 1 {
		p.SimWorkers = *workers
	}
	w := os.Stdout

	run := func(id string) error {
		switch id {
		case "table1":
			experiments.Table1Render(w)
		case "fig1":
			r, err := experiments.Fig1(p, *invocations)
			if err != nil {
				return err
			}
			r.Render(w)
		case "fig3c":
			r, err := experiments.Fig3c(p)
			if err != nil {
				return err
			}
			r.Render(w)
		case "fig6":
			r, err := experiments.Fig6(p)
			if err != nil {
				return err
			}
			r.Render(w)
		case "fig7a", "fig7b", "fig7":
			r, err := experiments.Fig7(p)
			if err != nil {
				return err
			}
			r.Render(w)
		case "fig8":
			r, err := experiments.Fig8(p)
			if err != nil {
				return err
			}
			r.Render(w)
		case "fig9":
			r, err := experiments.Fig9(p)
			if err != nil {
				return err
			}
			r.Render(w)
		case "fig10", "fig10ab", "fig10c":
			cfg := experiments.DefaultFig10Config()
			cfg.RPS = *rps
			cfg.Duration = des.Time(*duration * float64(des.Second))
			r, err := experiments.Fig10(p, cfg)
			if err != nil {
				return err
			}
			r.Render(w)
		case "ckpt":
			r, err := experiments.Ckpt(p)
			if err != nil {
				return err
			}
			r.Render(w)
		case "faults":
			r, err := experiments.Faults(p)
			if err != nil {
				return err
			}
			r.Render(w)
		case "scale":
			r, err := experiments.Scale(p, "Rnn", 4, nil)
			if err != nil {
				return err
			}
			r.Render(w)
		case "workflow":
			r, err := experiments.Workflow(p, 4, nil)
			if err != nil {
				return err
			}
			r.Render(w)
		case "capacity":
			cfg := experiments.DefaultCapacityConfig()
			cfg.RPS = *rps
			cfg.Duration = des.Time(*duration * float64(des.Second))
			r, err := experiments.Capacity(p, cfg)
			if err != nil {
				return err
			}
			r.Render(w)
		case "slo":
			cfg := experiments.DefaultSLOConfig()
			cfg.RPS = *rps
			cfg.Duration = des.Time(*duration * float64(des.Second))
			r, err := experiments.SLO(p, cfg)
			if err != nil {
				return err
			}
			r.Render(w)
		case "chaos":
			cfg := experiments.DefaultChaosConfig()
			cfg.RPS = *rps
			if *duration != 60 {
				cfg.Duration = des.Time(*duration * float64(des.Second))
			}
			r, err := experiments.Chaos(p, cfg)
			if err != nil {
				return err
			}
			r.Render(w)
		case "lanes":
			r, err := experiments.LaneSweep(p, *lanesFn, nil)
			if err != nil {
				return err
			}
			fmt.Fprint(w, experiments.FormatLaneSweep(r))
		case "fabric":
			cfg := experiments.DefaultFabricExpConfig()
			if *rps != 150 {
				cfg.RPS = *rps
			}
			if *duration != 60 {
				cfg.Duration = des.Time(*duration * float64(des.Second))
			}
			r, err := experiments.FabricSweep(p, cfg)
			if err != nil {
				return err
			}
			r.Render(w)
		case "xray":
			cfg := experiments.DefaultXRayExpConfig()
			if *rps != 150 {
				cfg.Fabric.RPS = *rps
			}
			if *duration != 60 {
				cfg.Fabric.Duration = des.Time(*duration * float64(des.Second))
			}
			r, err := experiments.XRaySweep(p, cfg)
			if err != nil {
				return err
			}
			r.Render(w)
		case "parbench":
			cfg := experiments.DefaultParBenchConfig()
			cfg.Nodes = *nodes
			sweep := []int{1, 2, 8}
			if *workers > 1 && *workers != 2 && *workers != 8 {
				sweep = append(sweep, *workers)
			}
			r, err := experiments.ParBenchSweep(p, cfg, sweep)
			if err != nil {
				return err
			}
			r.Render(w)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig1", "fig3c", "fig6", "fig7a", "fig8", "fig9", "ckpt", "faults", "scale", "workflow", "fig10", "capacity", "slo", "chaos", "fabric", "xray"}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(w, "\n"+strings.Repeat("=", 78)+"\n")
		}
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "cxlsim: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
