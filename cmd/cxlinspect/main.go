// Command cxlinspect builds a checkpoint of one of the built-in
// functions with each mechanism and dumps its layout: where the state
// lives (CXL device vs parent node), how the CXLfork checkpoint's
// rebased page-table and VMA leaves are organized, and what the light
// global-state serialization contains.
//
// Usage:
//
//	cxlinspect -function Bert
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cxlfork"
)

func main() {
	function := flag.String("function", "Float", "function to checkpoint (see Table 1)")
	verbose := flag.Bool("v", false, "dump the address-space layout and global state records")
	flag.Parse()

	sys := cxlfork.NewSystem(cxlfork.DefaultConfig())
	fn, err := sys.DeployFunction(0, *function)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlinspect: %v\n", err)
		os.Exit(1)
	}
	if err := fn.Warmup(16); err != nil {
		fmt.Fprintf(os.Stderr, "cxlinspect: %v\n", err)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "checkpoints of %s after 16 invocations\n\n", *function)
	fmt.Fprintln(tw, "mechanism\tpages\tdirty\tfile\tVMAs\tPT leaves\tVMA leaves\tCXL MB\tparent MB")
	for _, mech := range []cxlfork.MechanismKind{
		cxlfork.CXLfork, cxlfork.CRIUCXL, cxlfork.MitosisCXL,
	} {
		ck, err := sys.Checkpoint(fn, mech, "inspect-"+mech.String())
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlinspect: %v: %v\n", mech, err)
			os.Exit(1)
		}
		info := ck.Describe()
		dash := func(n int) string {
			if n == 0 && mech != cxlfork.CXLfork {
				return "-" // only CXLfork keeps OS structures inspectable on the device
			}
			return fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%d\t%d\n",
			info.Mechanism, info.DataPages, dash(info.DirtyPages), dash(info.FilePages),
			dash(info.VMAs), dash(info.PageTableLeaves), dash(info.VMALeaves),
			info.CXLBytes>>20, info.ParentBytes>>20)
		ck.Release()
	}
	tw.Flush()

	if *verbose {
		dumpLayout(sys, fn)
	}

	fmt.Println("\nnotes:")
	fmt.Println("  CXLfork: data pages + rebased OS structures live on the CXL device; any node attaches them.")
	fmt.Println("  CRIU-CXL: a serialized image file on the in-CXL filesystem; clean file pages are omitted.")
	fmt.Println("  Mitosis-CXL: a shadow copy pinned in the parent node's DRAM; OS state serialized for transfer.")
}

// dumpLayout prints the parent's address-space layout and descriptor
// table — the state a checkpoint must capture.
func dumpLayout(sys *cxlfork.System, fn *cxlfork.Function) {
	layout := fn.AddressSpace()
	fmt.Printf("\naddress space (%d VMAs):\n", len(layout))
	shown := 0
	for _, v := range layout {
		if shown == 12 && len(layout) > 16 {
			fmt.Printf("  ... %d more private file mappings ...\n", len(layout)-16)
		}
		shown++
		if shown > 12 && len(layout)-shown >= 4 {
			continue
		}
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("\ndescriptors (%d):\n", len(fn.Descriptors()))
	for _, d := range fn.Descriptors() {
		fmt.Printf("  %s\n", d)
	}
	_ = sys
}
