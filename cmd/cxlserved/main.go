// Command cxlserved is the live capacity-planning service
// (DESIGN.md §15): it serves the HTTP API in docs/API.md, running each
// posted workload spec as an isolated simulation session and streaming
// its telemetry as NDJSON. On SIGINT/SIGTERM it stops admitting,
// drains in-flight sessions within -drain, and exits 0.
//
// Usage:
//
//	cxlserved [-addr :8080] [-max-sessions 2] [-max-queue 4]
//	          [-session-timeout 2m] [-max-virtual 5m] [-drain 30s]
//	          [-debug-addr localhost:6060]
//
// -debug-addr, when set, serves net/http/pprof on a second listener
// (profiles, goroutine dumps, execution traces) — kept off the API
// address so debug endpoints are never exposed where the API is.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cxlfork/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxSessions := flag.Int("max-sessions", 2, "concurrently running sessions")
	maxQueue := flag.Int("max-queue", 4, "admission queue depth beyond the running slots")
	sessionTimeout := flag.Duration("session-timeout", 2*time.Minute, "default per-session wall-clock timeout")
	maxVirtual := flag.Duration("max-virtual", 5*time.Minute, "cap on a workload's virtual duration (negative: uncapped)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight sessions")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	flag.Parse()

	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux; serve that mux on its
		// own listener so the profiling surface stays off the API port.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxlserved: debug listener:", err)
			os.Exit(1)
		}
		fmt.Printf("cxlserved: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cxlserved: debug server:", err)
			}
		}()
	}

	mgr := serve.NewManager(serve.Config{
		MaxSessions:    *maxSessions,
		MaxQueue:       *maxQueue,
		SessionTimeout: *sessionTimeout,
		MaxVirtual:     *maxVirtual,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(mgr)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxlserved:", err)
		os.Exit(1)
	}
	fmt.Printf("cxlserved: listening on %s (max-sessions %d, max-queue %d)\n",
		ln.Addr(), *maxSessions, *maxQueue)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-sigCtx.Done():
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "cxlserved:", err)
		os.Exit(1)
	}

	fmt.Println("cxlserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cxlserved: drain deadline hit, sessions canceled:", err)
	}
	// Sessions have emitted their terminal frames; Shutdown now waits
	// only for streams to flush their tails.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = srv.Close()
	}
	<-errCh
	fmt.Println("cxlserved: bye")
}
