package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleReport builds a healthy trajectory report; tests doctor copies
// of it to prove each gate trips.
func sampleReport() *trajReport {
	rep := &trajReport{
		Schema:               trajectorySchema,
		SteadyAllocsPerEvent: 0.0001,
		Speedup:              3.1,
		Azure: trajAzure{
			Nodes: 4, Arrivals: 1000, Completed: 1000,
			Events: 2000, SimNs: 4e11, WallNs: 5e9,
			EventsPerSec: 400_000, SimSecPerWallSec: 80,
			AllocsPerEvent: 3.8, Fingerprint: "0x00000000deadbeef",
		},
	}
	for _, nodes := range trajNodeCounts {
		for _, workers := range trajWorkerCounts {
			engine := "sharded"
			if workers <= 1 {
				engine = "unified"
			}
			rep.Engine = append(rep.Engine, trajPoint{
				Nodes: nodes, Workers: workers, Engine: engine,
				Events: uint64(nodes * 1000), Epochs: uint64(workers - 1),
				Requests: int64(nodes * 10), SimNs: 1e9, WallNs: 1e8,
				EventsPerSec:     float64(nodes*workers) * 1e6,
				SimSecPerWallSec: 10, Fingerprint: "0x0000000000c0ffee",
			})
		}
	}
	return rep
}

// clone round-trips through JSON so doctoring one copy cannot alias
// the other — and proves the schema survives marshalling.
func clone(t *testing.T, rep *trajReport) *trajReport {
	t.Helper()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var out trajReport
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestCheckReportCleanBaselinePasses(t *testing.T) {
	rep := sampleReport()
	if v := checkReport(clone(t, rep), rep, 0.2, 2.0); len(v) != 0 {
		t.Fatalf("identical reports produced violations: %v", v)
	}
}

func TestCheckReportCatchesDoctoredBaselines(t *testing.T) {
	rep := sampleReport()
	cases := []struct {
		name   string
		doctor func(fresh *trajReport)
		want   string
	}{
		{"engine fingerprint drift", func(f *trajReport) {
			f.Engine[0].Fingerprint = "0x0000000000bad000"
		}, "fingerprint"},
		{"engine event-count drift", func(f *trajReport) {
			f.Engine[2].Events++
		}, "events"},
		{"missing grid point", func(f *trajReport) {
			f.Engine = f.Engine[1:]
		}, "missing"},
		{"throughput collapse", func(f *trajReport) {
			f.Engine[1].EventsPerSec /= 100
		}, "below"},
		{"azure fingerprint drift", func(f *trajReport) {
			f.Azure.Fingerprint = "0x0000000000bad000"
		}, "azure"},
		{"azure completed drift", func(f *trajReport) {
			f.Azure.Completed--
		}, "completed"},
		{"alloc ceiling breach", func(f *trajReport) {
			f.SteadyAllocsPerEvent = 1.5
		}, "allocs/event"},
		{"azure alloc regression", func(f *trajReport) {
			f.Azure.AllocsPerEvent += 1
		}, "allocs/event"},
		{"speedup below floor", func(f *trajReport) {
			f.Speedup = 1.4
		}, "speedup"},
		{"schema drift", func(f *trajReport) {
			f.Schema = "cxlbench-trajectory/0"
		}, "schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := clone(t, rep)
			tc.doctor(fresh)
			v := checkReport(fresh, rep, 0.2, 2.0)
			if len(v) == 0 {
				t.Fatalf("doctored report passed the gate")
			}
			joined := strings.ToLower(strings.Join(v, "\n"))
			if !strings.Contains(joined, tc.want) {
				t.Fatalf("violations %v do not mention %q", v, tc.want)
			}
		})
	}
}

// TestGateExitsNonzeroOnDoctoredBaseline is the end-to-end gating
// proof: a committed baseline whose fingerprints differ from the fresh
// run must make the harness exit nonzero.
func TestGateExitsNonzeroOnDoctoredBaseline(t *testing.T) {
	fresh := sampleReport()
	doctored := clone(t, fresh)
	doctored.Engine[0].Fingerprint = "0x0000000000bad000"
	doctored.Azure.Events += 7

	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_0007.json")
	blob, err := json.MarshalIndent(doctored, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	if code := gate(fresh, path, 0.2, 2.0, &stderr); code == 0 {
		t.Fatalf("gate passed a doctored baseline:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION") {
		t.Fatalf("gate output missing REGRESSION marker:\n%s", stderr.String())
	}

	var clean bytes.Buffer
	good, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := gate(clone(t, fresh), path, 0.2, 2.0, &clean); code != 0 {
		t.Fatalf("gate failed a clean baseline:\n%s", clean.String())
	}
}

func TestGateExitsNonzeroOnMissingBaseline(t *testing.T) {
	var stderr bytes.Buffer
	if code := gate(sampleReport(), filepath.Join(t.TempDir(), "nope.json"), 0.2, 2.0, &stderr); code == 0 {
		t.Fatal("gate passed with no baseline file")
	}
}
