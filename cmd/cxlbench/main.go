// Command cxlbench is the bench regression harness for the parallel
// checkpoint/restore pipeline. It runs the lane-count sweep on a fixed
// seeded workload and writes per-lane checkpoint/restore costs
// (virtual ns per page) plus dedup counters as JSON, so CI can diff the
// numbers against a previous run and catch cost-model regressions.
//
// Usage:
//
//	cxlbench                        # sweep Float over 1/2/4/8 lanes
//	cxlbench -fn Rnn -lanes 1,4     # another workload / lane set
//	cxlbench -o BENCH_PR2.json      # write the report (default)
//	cxlbench -full                  # paper-scale capacities and warmup
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cxlfork/internal/experiments"
	"cxlfork/internal/params"
)

// benchPoint is one lane count's costs in the JSON report. All times
// are virtual (simulated) nanoseconds: they are exactly reproducible,
// so any change is a real cost-model change, not machine noise.
type benchPoint struct {
	Lanes            int     `json:"lanes"`
	CheckpointNs     int64   `json:"checkpoint_ns"`
	CheckpointNsPage float64 `json:"checkpoint_ns_per_page"`
	RecheckpointNs   int64   `json:"recheckpoint_ns"`
	RestoreNs        int64   `json:"restore_ns"`
	RestoreNsPage    float64 `json:"restore_ns_per_page"`
	Speedup          float64 `json:"speedup_vs_1_lane"`
	DedupHits        int64   `json:"dedup_hits"`
	DedupMisses      int64   `json:"dedup_misses"`
	DedupBytesSaved  int64   `json:"dedup_bytes_saved"`
}

// benchReport is the BENCH_PR2.json schema.
type benchReport struct {
	Function string       `json:"function"`
	Pages    int          `json:"pages"`
	Points   []benchPoint `json:"points"`
}

func main() {
	fn := flag.String("fn", "Float", "function to sweep")
	lanesArg := flag.String("lanes", "1,2,4,8", "comma-separated lane counts")
	out := flag.String("o", "BENCH_PR2.json", "output JSON path (- for stdout)")
	full := flag.Bool("full", false, "paper-scale capacities and full 16-invocation warmup (slow)")
	flag.Parse()

	var laneCounts []int
	for _, s := range strings.Split(*lanesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "cxlbench: bad lane count %q\n", s)
			os.Exit(2)
		}
		laneCounts = append(laneCounts, n)
	}

	p := experiments.ExpParams()
	if !*full {
		// CI sizing: capacities just big enough for the small workloads
		// and a short warmup. Virtual-time results stay deterministic;
		// only wall-clock cost changes.
		p = ciParams(p)
	}

	r, err := experiments.LaneSweep(p, *fn, laneCounts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(os.Stderr, experiments.FormatLaneSweep(r))

	rep := benchReport{Function: r.Function, Pages: r.Points[0].Pages}
	for i, pt := range r.Points {
		rep.Points = append(rep.Points, benchPoint{
			Lanes:            pt.Lanes,
			CheckpointNs:     int64(pt.Checkpoint),
			CheckpointNsPage: pt.CheckpointNsPerPage(),
			RecheckpointNs:   int64(pt.Recheckpoint),
			RestoreNs:        int64(pt.Restore),
			RestoreNsPage:    pt.RestoreNsPerPage(),
			Speedup:          r.Speedup(i),
			DedupHits:        pt.DedupHits,
			DedupMisses:      pt.DedupMisses,
			DedupBytesSaved:  pt.DedupBytesSaved,
		})
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// ciParams shrinks pool capacities and the warmup so a sweep finishes
// in about a second.
func ciParams(p params.Params) params.Params {
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CheckpointAfter = 2
	return p
}
