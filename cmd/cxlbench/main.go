// Command cxlbench is the performance-trajectory harness of the
// simulator (DESIGN.md §13). Its default mode measures the parallel
// engine at 1/8/64 nodes with 1 and 8 workers, replays the
// million-request Azure trace through a full porter cluster, samples
// steady-state allocation cost, and writes the whole trajectory as
// BENCH_0007.json. With -check it instead compares a fresh run against
// the committed baseline and exits nonzero on regression: fingerprint
// or event-count drift (machine-independent — always enforced),
// allocation-ceiling breaches, a sharded-engine speedup below the
// floor, or throughput collapse beyond the wall-clock tolerance.
//
// Usage:
//
//	cxlbench                          # write BENCH_0007.json
//	cxlbench -check                   # gate against BENCH_0007.json
//	cxlbench -check -o latest.json    # gate and keep the fresh report
//	cxlbench -mode lanes              # legacy lane sweep (BENCH_PR2.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cxlfork/internal/des"
	"cxlfork/internal/experiments"
	"cxlfork/internal/params"
)

// trajectorySchema versions the BENCH_0007.json layout; -check refuses
// to compare reports across schema changes.
const trajectorySchema = "cxlbench-trajectory/1"

// trajPoint is one (nodes, workers) engine measurement. Fingerprint,
// events, epochs, requests and sim_ns are virtual-time facts — byte-
// identical on any machine; wall_ns and the derived rates are host
// measurements and only gated within a generous tolerance.
type trajPoint struct {
	Nodes            int     `json:"nodes"`
	Workers          int     `json:"workers"`
	Engine           string  `json:"engine"`
	Events           uint64  `json:"events"`
	Epochs           uint64  `json:"epochs"`
	Requests         int64   `json:"requests"`
	SimNs            int64   `json:"sim_ns"`
	WallNs           int64   `json:"wall_ns"`
	EventsPerSec     float64 `json:"events_per_sec"`
	SimSecPerWallSec float64 `json:"sim_sec_per_wall_sec"`
	Fingerprint      string  `json:"fingerprint"`
}

// trajAzure is the million-request cluster replay.
type trajAzure struct {
	Nodes            int     `json:"nodes"`
	Arrivals         int     `json:"arrivals"`
	Completed        int     `json:"completed"`
	Events           uint64  `json:"events"`
	SimNs            int64   `json:"sim_ns"`
	WallNs           int64   `json:"wall_ns"`
	EventsPerSec     float64 `json:"events_per_sec"`
	SimSecPerWallSec float64 `json:"sim_sec_per_wall_sec"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	Fingerprint      string  `json:"fingerprint"`
}

// trajReport is the BENCH_0007.json schema.
type trajReport struct {
	Schema string      `json:"schema"`
	Engine []trajPoint `json:"engine"`
	Azure  trajAzure   `json:"azure"`
	// SteadyAllocsPerEvent is the pooled-engine allocation floor: the
	// objects allocated per dispatched event once the free list is
	// primed (the pooling contract says ~0).
	SteadyAllocsPerEvent float64 `json:"steady_allocs_per_event"`
	// Speedup is the 8-worker/1-worker events-per-second ratio at the
	// 64-node point. Both runs happen on the same host back to back,
	// so the ratio is far more stable than either raw rate.
	Speedup float64 `json:"speedup_8w_over_1w_64_nodes"`
}

// trajNodeCounts and trajWorkerCounts span the engine grid.
var (
	trajNodeCounts   = []int{1, 8, 64}
	trajWorkerCounts = []int{1, 8}
)

// allocCeilingSlack is how far allocs-per-event may drift above the
// committed baseline before -check fails. Allocation counts are
// deterministic per Go version but not across them, so the gate
// carries slack instead of demanding equality.
const allocCeilingSlack = 0.05

// fpHex renders fingerprints as hex strings: JSON numbers are float64
// and cannot carry 64 bits exactly.
func fpHex(fp uint64) string { return fmt.Sprintf("%#016x", fp) }

// buildTrajectory runs the full measurement suite. Every engine grid
// cell at the same node count must produce the same fingerprint across
// worker counts; divergence is an error, not a report.
func buildTrajectory(p params.Params, verbose io.Writer) (*trajReport, error) {
	rep := &trajReport{Schema: trajectorySchema}
	var base64x float64
	for _, nodes := range trajNodeCounts {
		var first string
		for _, workers := range trajWorkerCounts {
			cfg := experiments.DefaultParBenchConfig()
			cfg.Nodes = nodes
			cfg.Workers = workers
			r := experiments.ParBench(p, cfg)
			engine := "sharded"
			if workers <= 1 {
				engine = "unified"
			}
			pt := trajPoint{
				Nodes:            nodes,
				Workers:          workers,
				Engine:           engine,
				Events:           r.Events,
				Epochs:           r.Epochs,
				Requests:         r.Requests,
				SimNs:            int64(r.SimTime),
				WallNs:           r.Wall.Nanoseconds(),
				EventsPerSec:     r.EventsPerSec(),
				SimSecPerWallSec: r.SimSecPerWallSec(),
				Fingerprint:      fpHex(r.Fingerprint),
			}
			if first == "" {
				first = pt.Fingerprint
			} else if pt.Fingerprint != first {
				return nil, fmt.Errorf("engine fingerprint diverged at %d nodes: %s (workers=%d) != %s",
					nodes, pt.Fingerprint, workers, first)
			}
			if nodes == 64 {
				if workers == 1 {
					base64x = pt.EventsPerSec
				} else if workers == 8 && base64x > 0 {
					rep.Speedup = pt.EventsPerSec / base64x
				}
			}
			fmt.Fprintf(verbose, "engine nodes=%-3d workers=%d %-7s %8d events  %6.2fM ev/s  %s\n",
				nodes, workers, engine, pt.Events, pt.EventsPerSec/1e6, pt.Fingerprint)
			rep.Engine = append(rep.Engine, pt)
		}
	}

	az, err := experiments.AzureBench(p, experiments.DefaultAzureBenchConfig())
	if err != nil {
		return nil, err
	}
	rep.Azure = trajAzure{
		Nodes:            az.Cfg.Nodes,
		Arrivals:         az.Arrivals,
		Completed:        az.Completed,
		Events:           az.Events,
		SimNs:            int64(az.SimTime),
		WallNs:           az.Wall.Nanoseconds(),
		EventsPerSec:     az.EventsPerSec(),
		SimSecPerWallSec: az.SimSecPerWallSec(),
		AllocsPerEvent:   az.AllocsPerEvent,
		Fingerprint:      fpHex(az.Fingerprint),
	}
	fmt.Fprintf(verbose, "azure  %d arrivals, %d completed in %.1fs wall  %s\n",
		az.Arrivals, az.Completed, az.Wall.Seconds(), rep.Azure.Fingerprint)

	rep.SteadyAllocsPerEvent = steadyAllocsPerEvent()
	fmt.Fprintf(verbose, "allocs steady %.4f/event, azure %.4f/event, speedup %.2fx\n",
		rep.SteadyAllocsPerEvent, rep.Azure.AllocsPerEvent, rep.Speedup)
	return rep, nil
}

// steadyAllocsPerEvent measures the pooled dispatch path: a warmed
// self-rescheduling event chain must allocate ~nothing per event.
func steadyAllocsPerEvent() float64 {
	const warm, total = 1000, 101000
	e := des.NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < total {
			e.After(des.Microsecond, tick)
		}
	}
	e.After(des.Microsecond, tick)
	for count < warm && e.Step() {
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	e.Run()
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(total-warm)
}

// checkReport compares a fresh trajectory against the committed
// baseline and returns every violation. Virtual-time facts must match
// exactly; host-dependent rates gate within tol (fresh must reach
// tol × baseline; tol <= 0 disables rate gating); allocation stats may
// drift up by at most allocCeilingSlack; the sharded speedup must stay
// at or above minSpeedup.
func checkReport(fresh, base *trajReport, tol, minSpeedup float64) []string {
	var v []string
	bad := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if fresh.Schema != base.Schema {
		bad("schema %q != baseline %q", fresh.Schema, base.Schema)
		return v
	}
	points := make(map[[2]int]*trajPoint, len(fresh.Engine))
	for i := range fresh.Engine {
		pt := &fresh.Engine[i]
		points[[2]int{pt.Nodes, pt.Workers}] = pt
	}
	for i := range base.Engine {
		b := &base.Engine[i]
		f := points[[2]int{b.Nodes, b.Workers}]
		if f == nil {
			bad("engine nodes=%d workers=%d: missing from fresh report", b.Nodes, b.Workers)
			continue
		}
		if f.Fingerprint != b.Fingerprint {
			bad("engine nodes=%d workers=%d: fingerprint %s != baseline %s",
				b.Nodes, b.Workers, f.Fingerprint, b.Fingerprint)
		}
		if f.Events != b.Events || f.SimNs != b.SimNs || f.Requests != b.Requests {
			bad("engine nodes=%d workers=%d: events/sim/requests %d/%d/%d != baseline %d/%d/%d",
				b.Nodes, b.Workers, f.Events, f.SimNs, f.Requests, b.Events, b.SimNs, b.Requests)
		}
		if tol > 0 && f.EventsPerSec < tol*b.EventsPerSec {
			bad("engine nodes=%d workers=%d: %.2fM ev/s below %.0f%% of baseline %.2fM",
				b.Nodes, b.Workers, f.EventsPerSec/1e6, 100*tol, b.EventsPerSec/1e6)
		}
	}
	if fresh.Azure.Fingerprint != base.Azure.Fingerprint {
		bad("azure: fingerprint %s != baseline %s", fresh.Azure.Fingerprint, base.Azure.Fingerprint)
	}
	if fresh.Azure.Events != base.Azure.Events || fresh.Azure.Completed != base.Azure.Completed {
		bad("azure: events/completed %d/%d != baseline %d/%d",
			fresh.Azure.Events, fresh.Azure.Completed, base.Azure.Events, base.Azure.Completed)
	}
	if tol > 0 && fresh.Azure.EventsPerSec < tol*base.Azure.EventsPerSec {
		bad("azure: %.2fM ev/s below %.0f%% of baseline %.2fM",
			fresh.Azure.EventsPerSec/1e6, 100*tol, base.Azure.EventsPerSec/1e6)
	}
	if fresh.Azure.AllocsPerEvent > base.Azure.AllocsPerEvent+allocCeilingSlack {
		bad("azure: %.4f allocs/event breaches baseline %.4f (+%.2f slack)",
			fresh.Azure.AllocsPerEvent, base.Azure.AllocsPerEvent, allocCeilingSlack)
	}
	if fresh.SteadyAllocsPerEvent > base.SteadyAllocsPerEvent+allocCeilingSlack {
		bad("engine: steady state %.4f allocs/event breaches baseline %.4f (+%.2f slack)",
			fresh.SteadyAllocsPerEvent, base.SteadyAllocsPerEvent, allocCeilingSlack)
	}
	if minSpeedup > 0 && fresh.Speedup < minSpeedup {
		bad("speedup: 8-worker/1-worker ratio %.2fx below floor %.2fx", fresh.Speedup, minSpeedup)
	}
	return v
}

// gate runs the -check pipeline: load the baseline, compare, report.
// It returns the process exit code so a test can doctor a baseline and
// prove regressions exit nonzero.
func gate(fresh *trajReport, baselinePath string, tol, minSpeedup float64, stderr io.Writer) int {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "cxlbench: baseline: %v\n", err)
		return 1
	}
	var base trajReport
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(stderr, "cxlbench: baseline %s: %v\n", baselinePath, err)
		return 1
	}
	violations := checkReport(fresh, &base, tol, minSpeedup)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(stderr, "cxlbench: REGRESSION: %s\n", v)
		}
		fmt.Fprintf(stderr, "cxlbench: %d regression(s) vs %s\n", len(violations), baselinePath)
		return 1
	}
	fmt.Fprintf(stderr, "cxlbench: trajectory matches %s\n", baselinePath)
	return 0
}

func main() {
	mode := flag.String("mode", "trajectory", "benchmark mode: trajectory, lanes")
	check := flag.Bool("check", false, "compare a fresh trajectory against -baseline and exit nonzero on regression")
	baseline := flag.String("baseline", "BENCH_0007.json", "committed trajectory baseline for -check")
	tol := flag.Float64("tolerance", 0.2, "events/sec floor as a fraction of baseline (0 disables rate gating)")
	minSpeedup := flag.Float64("min-speedup", 2.0, "required 8-worker/1-worker events/sec ratio at 64 nodes")
	fn := flag.String("fn", "Float", "lanes: function to sweep")
	lanesArg := flag.String("lanes", "1,2,4,8", "lanes: comma-separated lane counts")
	out := flag.String("o", "", "output JSON path (- for stdout; default BENCH_0007.json / BENCH_PR2.json by mode, none for -check)")
	full := flag.Bool("full", false, "lanes: paper-scale capacities and full warmup (slow)")
	flag.Parse()

	switch {
	case *mode == "lanes":
		runLanes(*fn, *lanesArg, *out, *full)
	case *mode == "trajectory":
		p := experiments.ExpParams()
		rep, err := buildTrajectory(p, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
			os.Exit(1)
		}
		if *out != "" {
			writeJSON(rep, *out)
		} else if !*check {
			writeJSON(rep, "BENCH_0007.json")
		}
		if *check {
			os.Exit(gate(rep, *baseline, *tol, *minSpeedup, os.Stderr))
		}
	default:
		fmt.Fprintf(os.Stderr, "cxlbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// writeJSON marshals the report to path ("-" for stdout) or dies.
func writeJSON(rep any, path string) {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if path == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// benchPoint is one lane count's costs in the legacy lanes report. All
// times are virtual (simulated) nanoseconds: exactly reproducible, so
// any change is a real cost-model change, not machine noise.
type benchPoint struct {
	Lanes            int     `json:"lanes"`
	CheckpointNs     int64   `json:"checkpoint_ns"`
	CheckpointNsPage float64 `json:"checkpoint_ns_per_page"`
	RecheckpointNs   int64   `json:"recheckpoint_ns"`
	RestoreNs        int64   `json:"restore_ns"`
	RestoreNsPage    float64 `json:"restore_ns_per_page"`
	Speedup          float64 `json:"speedup_vs_1_lane"`
	DedupHits        int64   `json:"dedup_hits"`
	DedupMisses      int64   `json:"dedup_misses"`
	DedupBytesSaved  int64   `json:"dedup_bytes_saved"`
}

// benchReport is the BENCH_PR2.json schema.
type benchReport struct {
	Function string       `json:"function"`
	Pages    int          `json:"pages"`
	Points   []benchPoint `json:"points"`
}

// runLanes is the legacy lane-sweep mode, kept byte-compatible with
// the BENCH_PR2.json consumers.
func runLanes(fn, lanesArg, out string, full bool) {
	var laneCounts []int
	for _, s := range strings.Split(lanesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "cxlbench: bad lane count %q\n", s)
			os.Exit(2)
		}
		laneCounts = append(laneCounts, n)
	}

	p := experiments.ExpParams()
	if !full {
		// CI sizing: capacities just big enough for the small workloads
		// and a short warmup. Virtual-time results stay deterministic;
		// only wall-clock cost changes.
		p = ciParams(p)
	}

	r, err := experiments.LaneSweep(p, fn, laneCounts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(os.Stderr, experiments.FormatLaneSweep(r))

	rep := benchReport{Function: r.Function, Pages: r.Points[0].Pages}
	for i, pt := range r.Points {
		rep.Points = append(rep.Points, benchPoint{
			Lanes:            pt.Lanes,
			CheckpointNs:     int64(pt.Checkpoint),
			CheckpointNsPage: pt.CheckpointNsPerPage(),
			RecheckpointNs:   int64(pt.Recheckpoint),
			RestoreNs:        int64(pt.Restore),
			RestoreNsPage:    pt.RestoreNsPerPage(),
			Speedup:          r.Speedup(i),
			DedupHits:        pt.DedupHits,
			DedupMisses:      pt.DedupMisses,
			DedupBytesSaved:  pt.DedupBytesSaved,
		})
	}
	if out == "" {
		out = "BENCH_PR2.json"
	}
	writeJSON(rep, out)
}

// ciParams shrinks pool capacities and the warmup so a lane sweep
// finishes in about a second.
func ciParams(p params.Params) params.Params {
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CheckpointAfter = 2
	return p
}
