// Command cxlstat replays a telemetry-enabled Fig. 10 trace and
// renders the sampled metric timeline (DESIGN.md §11): a summary
// table with per-series sparklines, a -follow style tick-by-tick
// replay over the finished run, or raw exports in Prometheus,
// OpenMetrics, CSV, or JSON form.
//
// Usage:
//
//	cxlstat                              # summary table + sparklines
//	cxlstat -follow -filter porter_      # replay porter series over time
//	cxlstat -format prom -o metrics.prom # Prometheus text exposition
//	cxlstat -format prom -check          # validate the exposition shape
//	cxlstat -rps 40 -duration 10 -fn Float,Json -slo 0.8 -drive
//	cxlstat -xray -switches 2 -devices 4 -rf 3  # latency blame + link heatmap
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"cxlfork/internal/des"
	"cxlfork/internal/experiments"
	"cxlfork/internal/telemetry"
)

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func main() {
	rps := flag.Float64("rps", 60, "aggregate request rate of the replayed trace")
	duration := flag.Float64("duration", 20, "trace duration in seconds")
	fns := flag.String("fn", "", "comma-separated function subset (default: full suite)")
	policy := flag.String("policy", "", "eviction policy override")
	seed := flag.Int64("seed", 7, "trace seed")
	sample := flag.Float64("sample", 100, "sampling period in virtual milliseconds")
	frac := flag.Float64("devfrac", 0.5, "device size as a fraction of the suite footprint (0 keeps defaults)")
	slo := flag.Float64("slo", 0, "occupancy SLO target (0 disables the objective)")
	drive := flag.Bool("drive", false, "let a firing occupancy alert drive early reclaim")
	format := flag.String("format", "summary", "output: summary, prom, openmetrics, csv, json")
	out := flag.String("o", "", "write output to file instead of stdout")
	follow := flag.Bool("follow", false, "replay the sampled timeline tick by tick")
	width := flag.Int("width", 40, "sparkline / follow downsample width")
	filter := flag.String("filter", "", "only series whose key contains this substring")
	check := flag.Bool("check", false, "self-validate the Prometheus exposition and exit non-zero on malformed lines")
	devices := flag.Int("devices", 0, "split the CXL capacity into this many pool devices (0 keeps the single device)")
	rf := flag.Int("rf", 0, "replicate each checkpoint onto this many pool devices (0 keeps the default)")
	switches := flag.Int("switches", 0, "run on an explicit grid fabric topology with this many switches (0 keeps the flat model)")
	placement := flag.String("placement", "", "replica placement policy over the topology: hash or locality")
	xrayOn := flag.Bool("xray", false, "append the critical-path latency blame report (DESIGN.md §16)")
	flag.Parse()

	var fnList []string
	if *fns != "" {
		fnList = strings.Split(*fns, ",")
	}
	res, err := experiments.TelemetryTrace(experiments.ExpParams(), experiments.TelemetryTraceConfig{
		RPS:               *rps,
		Duration:          des.Time(*duration * float64(des.Second)),
		DeviceFrac:        *frac,
		Functions:         fnList,
		Policy:            *policy,
		Seed:              *seed,
		SampleEvery:       des.Time(*sample * float64(des.Millisecond)),
		SLOOccupancy:      *slo,
		SLODrive:          *drive,
		Devices:           *devices,
		ReplicationFactor: *rf,
		Switches:          *switches,
		Placement:         *placement,
		XRay:              *xrayOn,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlstat: %v\n", err)
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlstat: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	reg := res.Registry
	switch {
	case *check:
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "cxlstat: %v\n", err)
			os.Exit(1)
		}
		if n := checkExposition(os.Stderr, buf.Bytes()); n > 0 {
			fmt.Fprintf(os.Stderr, "cxlstat: exposition check FAILED: %d malformed lines\n", n)
			os.Exit(1)
		}
		bw.Write(buf.Bytes())
		fmt.Fprintf(os.Stderr, "cxlstat: exposition check ok (%d series, %d ticks)\n", len(reg.Series()), reg.Ticks())
	case *follow:
		renderFollow(bw, reg, *filter, *width)
	case *format == "summary":
		renderSummary(bw, reg, res, *filter, *width)
		if *xrayOn {
			fmt.Fprintln(bw)
			err = res.XRay.WriteText(bw)
		}
	case *format == "prom":
		err = reg.WritePrometheus(bw)
	case *format == "openmetrics":
		err = reg.WriteOpenMetrics(bw)
	case *format == "csv":
		err = reg.WriteCSV(bw)
	case *format == "json":
		err = reg.WriteJSON(bw)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlstat: %v\n", err)
		os.Exit(1)
	}
}

// filtered returns the registry's series whose key contains the
// filter substring, in export order.
func filtered(reg *telemetry.Registry, filter string) []*telemetry.Series {
	var out []*telemetry.Series
	for _, s := range reg.Series() {
		if filter == "" || strings.Contains(s.Key(), filter) {
			out = append(out, s)
		}
	}
	return out
}

// sparkline downsamples a series' values into width buckets and
// renders each bucket's mean on the shared [min,max] scale.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range vals[lo:hi] {
			sum += v
		}
		mean := sum / float64(hi-lo)
		idx := 0
		if max > min {
			idx = int((mean - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func renderSummary(w io.Writer, reg *telemetry.Registry, res *experiments.TelemetryTraceResult, filter string, width int) {
	fmt.Fprintf(w, "cxlstat — %d ticks every %s, %d series, %d ring drops\n",
		reg.Ticks(), compactTime(reg.SampleEvery()), len(reg.Series()), reg.Dropped())
	if res.DeviceBytes > 0 {
		fmt.Fprintf(w, "device %d MiB", res.DeviceBytes>>20)
		if res.FootprintBytes > 0 {
			fmt.Fprintf(w, " (footprint %d MiB)", res.FootprintBytes>>20)
		}
		fmt.Fprintln(w)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Series\tKind\tN\tLast\tMin\tMax\tTimeline")
	for _, s := range filtered(reg, filter) {
		samples := s.Samples()
		vals := make([]float64, len(samples))
		min, max := 0.0, 0.0
		for i, sm := range samples {
			vals[i] = sm.V
			if i == 0 || sm.V < min {
				min = sm.V
			}
			if i == 0 || sm.V > max {
				max = sm.V
			}
		}
		last := 0.0
		if n := len(vals); n > 0 {
			last = vals[n-1]
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			s.Key(), s.Kind(), len(vals), fmtVal(last), fmtVal(min), fmtVal(max),
			sparkline(vals, width))
	}
	tw.Flush()
	if len(res.Alerts) > 0 {
		fmt.Fprintln(w, "\nSLO alerts:")
		for _, a := range res.Alerts {
			state := "RESOLVED"
			if a.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(w, "  %8s  %s %s (burn short %.1f, long %.1f)\n",
				compactTime(a.At), a.Objective, state, a.Short, a.Long)
		}
	}
}

// renderFollow replays the sampled timeline tick by tick, one row per
// sample time, one column per filtered series — a tail -f over the
// finished run's virtual clock.
func renderFollow(w io.Writer, reg *telemetry.Registry, filter string, width int) {
	series := filtered(reg, filter)
	if len(series) == 0 {
		fmt.Fprintln(w, "cxlstat: no series match the filter")
		return
	}
	if len(series) > 6 {
		fmt.Fprintf(w, "cxlstat: %d series match; showing first 6 (narrow with -filter)\n", len(series))
		series = series[:6]
	}
	times := map[des.Time]bool{}
	byT := make([]map[des.Time]float64, len(series))
	for i, s := range series {
		byT[i] = map[des.Time]float64{}
		for _, sm := range s.Samples() {
			times[sm.T] = true
			byT[i][sm.T] = sm.V
		}
	}
	var order []des.Time
	for t := range times {
		order = append(order, t)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	// Downsample to ~width rows so a long run stays readable.
	step := 1
	if width > 0 && len(order) > width {
		step = (len(order) + width - 1) / width
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "t")
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.Key())
	}
	fmt.Fprintln(tw)
	for i := 0; i < len(order); i += step {
		t := order[i]
		fmt.Fprint(tw, compactTime(t))
		for j := range series {
			if v, ok := byT[j][t]; ok {
				fmt.Fprintf(tw, "\t%s", fmtVal(v))
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)? [0-9]+$`)
)

// checkExposition validates every line of a Prometheus text
// exposition against the line grammar and returns the number of
// malformed lines, reporting each to w.
func checkExposition(w io.Writer, b []byte) int {
	bad := 0
	for i, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		if line == "" || promComment.MatchString(line) || promSample.MatchString(line) {
			continue
		}
		bad++
		fmt.Fprintf(w, "cxlstat: line %d malformed: %q\n", i+1, line)
	}
	return bad
}

// compactTime renders a virtual time compactly (ms under a second,
// else seconds).
func compactTime(t des.Time) string {
	if t < des.Second {
		return fmt.Sprintf("%dms", t/des.Millisecond)
	}
	return fmt.Sprintf("%.2fs", float64(t)/float64(des.Second))
}
