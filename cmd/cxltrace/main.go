// Command cxltrace runs a remote-fork scenario with the virtual-time
// tracer enabled, writes the recorded span stream as Chrome trace_event
// JSON (open in Perfetto: ui.perfetto.dev), and prints the per-phase
// latency breakdown the trace folds into — the same decomposition the
// paper's Fig. 6 reports per mechanism.
//
// Usage:
//
//	cxltrace -o trace.json                  # CXLfork quickstart on "Float"
//	cxltrace -fn Bert -mech criu -lanes 4
//	cxltrace -scenario faults               # checkpoint fault + retry
//	cxltrace -check -o trace.json           # self-validate the trace
//	cxltrace -critical -o trace.json        # mark each op's critical path
//
// -check re-reads the written file, rebuilds the span stream from the
// JSON, and verifies the structural invariants: spans nest, per-track
// timelines are totally ordered, each operation's phase children sum
// exactly to the operation's duration, the file's per-phase totals match
// the live histograms, the op/checkpoint total matches the virtual-clock
// delta measured around the Checkpoint calls, and nothing was dropped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"
	"time"

	"cxlfork"
	"cxlfork/internal/des"
	"cxlfork/internal/trace"
)

func main() {
	fn := flag.String("fn", "Float", "workload function to trace (see FunctionNames)")
	mech := flag.String("mech", "cxlfork", "checkpoint mechanism: cxlfork, criu, mitosis")
	out := flag.String("o", "trace.json", "Chrome trace output path")
	lanes := flag.Int("lanes", 4, "checkpoint/restore lane count")
	seed := flag.Int64("seed", 1, "simulation seed")
	scenario := flag.String("scenario", "quickstart", "scenario: quickstart, faults")
	check := flag.Bool("check", false, "re-read the written trace and verify its invariants")
	critical := flag.Bool("critical", false, "mark each operation's critical path in the exported trace (args.critical=1)")
	flag.Parse()

	if err := run(*fn, *mech, *out, *lanes, *seed, *scenario, *check, *critical); err != nil {
		fmt.Fprintln(os.Stderr, "cxltrace:", err)
		os.Exit(1)
	}
}

func run(fn, mechName, out string, lanes int, seed int64, scenario string, check, critical bool) error {
	var mech cxlfork.MechanismKind
	switch mechName {
	case "cxlfork":
		mech = cxlfork.CXLfork
	case "criu":
		mech = cxlfork.CRIUCXL
	case "mitosis":
		mech = cxlfork.MitosisCXL
	default:
		return fmt.Errorf("unknown mechanism %q", mechName)
	}

	cfg := cxlfork.DefaultConfig()
	cfg.Trace = true
	cfg.Seed = seed
	cfg.CheckpointLanes = lanes
	cfg.RestoreLanes = lanes
	sys := cxlfork.NewSystem(cfg)

	var ckDelta time.Duration
	switch scenario {
	case "quickstart":
		if err := quickstart(sys, fn, mech, &ckDelta); err != nil {
			return err
		}
	case "faults":
		if err := faults(sys, fn, mech, &ckDelta); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	write := sys.WriteTrace
	if critical {
		write = sys.WriteTraceCritical
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d spans, %d dropped (open in ui.perfetto.dev)\n\n",
		out, sys.TraceEventCount(), sys.TraceDropped())

	phaseTable(sys)

	if check {
		if err := verify(sys, out, ckDelta); err != nil {
			return err
		}
		fmt.Println("\ncheck: all trace invariants hold")
	}
	return nil
}

// quickstart is the paper's core loop: cold start and warm up the
// function on node 0, checkpoint it, restore the clone on node 1, and
// invoke the clone once so restore-side faulting shows in the trace.
func quickstart(sys *cxlfork.System, fn string, mech cxlfork.MechanismKind, ckDelta *time.Duration) error {
	live, err := sys.DeployFunction(0, fn)
	if err != nil {
		return err
	}
	if err := live.Warmup(16); err != nil {
		return err
	}
	t0 := sys.Now()
	ck, err := sys.Checkpoint(live, mech, fn+"-v1")
	*ckDelta += sys.Now() - t0
	if err != nil {
		return err
	}
	clone, err := sys.Restore(1, ck, cxlfork.RestoreOptions{})
	if err != nil {
		return err
	}
	if _, err := clone.Invoke(); err != nil {
		return err
	}
	return nil
}

// faults runs quickstart with a one-shot device-full fault injected at
// the first checkpoint's VMA step: the first attempt fails (a zero-width
// error annotation in the trace), the retry succeeds.
func faults(sys *cxlfork.System, fn string, mech cxlfork.MechanismKind, ckDelta *time.Duration) error {
	live, err := sys.DeployFunction(0, fn)
	if err != nil {
		return err
	}
	if err := live.Warmup(16); err != nil {
		return err
	}
	sys.InjectFault(cxlfork.FaultRule{
		Kind: cxlfork.DeviceFull,
		Step: cxlfork.StepCheckpointVMA,
		Node: cxlfork.AnyNode,
	})
	t0 := sys.Now()
	ck, err := sys.Checkpoint(live, mech, fn+"-v1")
	*ckDelta += sys.Now() - t0
	if err == nil {
		return fmt.Errorf("injected checkpoint fault did not fire")
	}
	t0 = sys.Now()
	ck, err = sys.Checkpoint(live, mech, fn+"-v2")
	*ckDelta += sys.Now() - t0
	if err != nil {
		return fmt.Errorf("checkpoint retry: %w", err)
	}
	clone, err := sys.Restore(1, ck, cxlfork.RestoreOptions{})
	if err != nil {
		return err
	}
	if _, err := clone.Invoke(); err != nil {
		return err
	}
	return nil
}

// phaseTable prints the per-phase latency breakdown (Fig. 6 style).
func phaseTable(sys *cxlfork.System) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PHASE\tCOUNT\tTOTAL\tMEAN\tP99\tMAX")
	for _, ph := range sys.TracePhases() {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\n",
			ph.Phase, ph.Count, ph.Total, ph.Mean, ph.P99, ph.Max)
	}
	w.Flush()
}

// chromeEvent mirrors the exporter's X-event shape.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Args struct {
		Span   int   `json:"span"`
		Parent int   `json:"parent"`
		Bytes  int64 `json:"bytes"`
		Pages  int   `json:"pages"`
	} `json:"args"`
}

// verify re-reads the written trace and checks every structural
// invariant the tracer promises.
func verify(sys *cxlfork.System, path string, ckDelta time.Duration) error {
	if n := sys.TraceDropped(); n != 0 {
		return fmt.Errorf("check: %d spans dropped; raise -o scenario's TraceBufferCap", n)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return fmt.Errorf("check: trace is not valid JSON: %w", err)
	}

	// Rebuild the span stream. The exporter writes microseconds with
	// three decimals, so nanosecond integers round-trip exactly.
	var events []trace.Event
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		events = append(events, trace.Event{
			Name:   e.Name,
			Cat:    e.Cat,
			Node:   e.Pid,
			Track:  e.Tid,
			Begin:  des.Time(math.Round(e.Ts * 1e3)),
			Dur:    des.Time(math.Round(e.Dur * 1e3)),
			Parent: trace.SpanID(e.Args.Parent),
			Bytes:  e.Args.Bytes,
			Pages:  e.Args.Pages,
		})
		if got, want := e.Args.Span, len(events); got != want {
			return fmt.Errorf("check: span IDs not dense: event %d has span %d", want, got)
		}
	}
	if len(events) != sys.TraceEventCount() {
		return fmt.Errorf("check: file has %d spans, tracer recorded %d",
			len(events), sys.TraceEventCount())
	}
	for _, err := range trace.CheckNesting(events) {
		return fmt.Errorf("check: %w", err)
	}

	// Each operation's direct phase children partition it: their
	// durations sum exactly to the operation's. The mechanisms charge
	// integer costs phase by phase, so equality is exact, not approximate.
	phaseSum := make(map[trace.SpanID]des.Time)
	hasPhases := make(map[trace.SpanID]bool)
	for _, e := range events {
		if e.Cat == trace.CatPhase && e.Parent != trace.None {
			phaseSum[e.Parent] += e.Dur
			hasPhases[e.Parent] = true
		}
	}
	for i, e := range events {
		id := trace.SpanID(i + 1)
		if e.Cat == trace.CatOp && hasPhases[id] && phaseSum[id] != e.Dur {
			return fmt.Errorf("check: op %q [%d,%d) lasts %d but its phases sum to %d",
				e.Name, e.Begin, e.End(), e.Dur, phaseSum[id])
		}
	}

	// The file's per-phase totals must match the live histograms the
	// facade reports (lane spans are sub-phase detail, excluded).
	fileTotals := make(map[string]time.Duration)
	for _, e := range events {
		if e.Cat != trace.CatLane {
			fileTotals[e.Cat+"/"+e.Name] += time.Duration(e.Dur)
		}
	}
	phases := sys.TracePhases()
	for _, ph := range phases {
		if fileTotals[ph.Phase] != ph.Total {
			return fmt.Errorf("check: phase %s: file total %v != histogram total %v",
				ph.Phase, fileTotals[ph.Phase], ph.Total)
		}
		delete(fileTotals, ph.Phase)
	}
	for name := range fileTotals {
		return fmt.Errorf("check: phase %s in file but not in histograms", name)
	}

	// Checkpoint spans cover exactly the virtual time the Checkpoint
	// calls consumed: the tracer is observational, so the span stream
	// and the clock must tell the same story.
	var ckTotal time.Duration
	for _, ph := range phases {
		if ph.Phase == "op/checkpoint" {
			ckTotal = ph.Total
		}
	}
	if ckTotal != ckDelta {
		return fmt.Errorf("check: op/checkpoint spans total %v but the clock advanced %v",
			ckTotal, ckDelta)
	}
	return nil
}
