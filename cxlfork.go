package cxlfork

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/kernel"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/params"
	"cxlfork/internal/rfork"
	"cxlfork/internal/vma"
	"cxlfork/internal/xray"
)

// Typed failure sentinels surfaced by checkpoint/restore paths. Test
// with errors.Is: wrapped variants carry context (which node, which
// image, which step).
var (
	// ErrTornImage marks a checkpoint whose publication never reached
	// its seal (the publishing node died mid-sequence).
	ErrTornImage = rfork.ErrTornImage
	// ErrImageCorrupt marks a checkpoint whose records fail their
	// checksums or cannot be decoded.
	ErrImageCorrupt = rfork.ErrImageCorrupt
	// ErrNodeDown marks an operation that targeted a crashed node.
	ErrNodeDown = rfork.ErrNodeDown
	// ErrDeviceFull marks CXL device capacity exhaustion.
	ErrDeviceFull = cxl.ErrDeviceFull
	// ErrDeviceFailed marks an operation against a pool device that a
	// DeviceLoss fault (or FailDevice) has permanently killed.
	ErrDeviceFailed = cxl.ErrDeviceFailed
)

// Config describes the simulated platform.
type Config struct {
	// Nodes is the number of compute nodes sharing the CXL device.
	Nodes int
	// NodeDRAM is per-node local memory in bytes.
	NodeDRAM int64
	// CXLCapacity is the shared device capacity in bytes.
	CXLCapacity int64
	// CXLLatency is the round-trip latency to CXL memory (391ns on the
	// paper's FPGA prototype).
	CXLLatency time.Duration
	// LLC is the per-node last-level cache size in bytes.
	LLC int64
	// Cores is the number of cores per node.
	Cores int
	// CheckpointLanes is the number of worker lanes checkpoint pipelines
	// shard across; 0 keeps the single-lane default (the sequential
	// accounting). Lanes contend on the fabric's copy streams, so the
	// speedup is sub-linear past a few lanes.
	CheckpointLanes int
	// RestoreLanes is the restore-side lane count; 0 keeps one lane.
	RestoreLanes int
	// Trace enables the virtual-time span tracer. Tracing is purely
	// observational — it never advances the clock — so enabling it
	// changes no simulated result, only records one.
	Trace bool
	// TraceBufferCap bounds the trace buffer's event count; 0 uses the
	// tracer's default. Once full, further spans are counted as dropped
	// and discarded.
	TraceBufferCap int
	// XRay enables critical-path latency attribution (DESIGN.md §16):
	// every request's latency is decomposed into named blame
	// components, fabric links report contention heat, and XRayReport
	// (or RunReport.XRay for workload runs) exposes the deterministic
	// blame report. Like tracing, attribution is purely observational
	// — enabling it changes no simulated result.
	XRay bool
	// XRayExemplars bounds the worst-request exemplars kept per op
	// class (0 keeps the attribution engine's default of 5).
	XRayExemplars int
	// Capacity tunes the device-capacity manager (checkpoint eviction
	// under memory pressure, DESIGN.md §10). Zero values keep defaults.
	Capacity CapacityConfig
	// Replication tunes the multi-device pool and checkpoint replica
	// placement (DESIGN.md §12). Zero values keep the single-device,
	// single-copy default, whose behaviour is byte-identical to builds
	// without a pool.
	Replication ReplicationConfig
	// Fabric declares an explicit multi-switch topology and the replica
	// placement policy run over it (DESIGN.md §14). The zero value
	// keeps the flat single-hop fabric.
	Fabric FabricConfig
	// Telemetry tunes the virtual-time metric sampler (DESIGN.md §11).
	// Like tracing, sampling is purely observational.
	Telemetry TelemetryConfig
	// Workers is the simulation worker count (DESIGN.md §13). At 0 or 1
	// everything runs sequentially; above 1, independent simulation
	// legs fan out to a goroutine pool and multi-node fabric workloads
	// run on the sharded epoch-barrier engine. Results are
	// byte-identical at any worker count — workers trade wall-clock
	// time only, never determinism.
	Workers int
	// Seed drives all randomized behaviour (deterministic by default).
	Seed int64
}

// TelemetryConfig tunes the deterministic metric sampler: every layer
// registers gauges/counters against a shared registry that is probed
// on a fixed virtual-time tick into bounded ring-buffer series.
type TelemetryConfig struct {
	// Enabled turns sampling on.
	Enabled bool
	// SampleEvery is the virtual-time sampling period (default 100ms).
	SampleEvery time.Duration
	// SeriesCap bounds each series' sample ring (default 4096); once
	// full the oldest sample is overwritten and counted as dropped.
	SeriesCap int
	// SLOOccupancy, when non-zero, declares a device-occupancy
	// objective (utilization fraction samples should stay at or below)
	// evaluated by multi-window burn-rate alerts (DESIGN.md §11).
	SLOOccupancy float64
	// SLOColdStartP99, when non-zero, declares a cold-start tail
	// objective: the running cold P99 should stay at or below this.
	SLOColdStartP99 time.Duration
	// SLODrive lets a firing occupancy alert drive the capacity
	// manager (early reclaim toward the low watermark plus tightened
	// admission) instead of only observing.
	SLODrive bool
}

// CapacityConfig tunes checkpoint eviction on the shared device. The
// capacity manager runs inside CXLporter (the autoscaler): when device
// occupancy crosses HighWatermark it evicts checkpoints by EvictPolicy
// until occupancy drops to LowWatermark, deferring any image a live
// clone or in-flight restore still references.
type CapacityConfig struct {
	// EvictPolicy picks eviction victims: "costbenefit" (lowest expected
	// restore-latency-saved per resident byte first; default), "lru"
	// (least recently restored first), or "largest" (largest reclaimable
	// footprint first).
	EvictPolicy string
	// HighWatermark is the device occupancy fraction that triggers
	// eviction (default 0.90).
	HighWatermark float64
	// LowWatermark is the occupancy fraction eviction drives the device
	// back down to (default 0.75).
	LowWatermark float64
	// ReclaimPeriod is the background occupancy re-check interval on the
	// virtual clock (default 1s).
	ReclaimPeriod time.Duration
}

// ReplicationConfig tunes the fabric-attached device pool and the
// replica manager that fans sealed checkpoints across it
// (DESIGN.md §12). CXLCapacity is split evenly (page-aligned) across
// Devices; each sealed checkpoint is placed on Factor devices by
// consistent hashing with dedup affinity to the ingest device. When a
// device dies (DeviceLoss fault or FailDevice) restores fail over down
// the replica list under a per-request retry budget, and an
// anti-entropy repair loop rebuilds missing copies on the virtual
// clock.
type ReplicationConfig struct {
	// Devices is the pool size; 0 or 1 keeps the single device.
	Devices int
	// Factor is the number of devices holding each sealed checkpoint
	// (clamped to the pool size; default 1).
	Factor int
	// RepairPeriod is the anti-entropy loop's tick (default 500ms).
	RepairPeriod time.Duration
	// RepairBandwidthPages caps pages copied per repair tick
	// (default 4096).
	RepairBandwidthPages int
	// RetryBudget is the per-restore retry budget shared by replica
	// failover probes and node-down retries (default 3).
	RetryBudget int
	// RetryBackoff is the base of the capped exponential restore
	// backoff (default 10ms).
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential backoff (default 160ms).
	RetryBackoffCap time.Duration
	// FailoverTimeout is the virtual-time cost of probing one dead
	// replica before moving down the list (default 2ms).
	FailoverTimeout time.Duration
}

// FabricConfig declares the CXL fabric topology (DESIGN.md §14). A
// non-empty Topology is an internal/fabric spec — host/switch/device
// declarations plus links with optional lat=/bw=/streams= attributes —
// that the cluster builds into an explicit graph: the spec's device
// count overrides ReplicationConfig.Devices, restores are routed from
// the nearest healthy replica, and non-trivial topologies charge real
// per-link path latency and stream contention on every restore.
type FabricConfig struct {
	// Topology is the fabric spec text ("" keeps the flat model). Use
	// fabric.GridSpec for the canonical hosts × switches × devices
	// layout.
	Topology string
	// Placement selects the replica placement policy: "hash" (default,
	// pure consistent-hash ring) or "locality" (switch-spread,
	// path-cost-reweighted ring).
	Placement string
}

// DefaultConfig returns a two-node platform matching the paper's
// testbed, with capacities sized for affordable simulation.
func DefaultConfig() Config {
	p := params.Default()
	return Config{
		Nodes:       2,
		NodeDRAM:    6 << 30,
		CXLCapacity: 8 << 30,
		CXLLatency:  time.Duration(p.CXLLatency),
		LLC:         p.LLCBytes,
		Cores:       p.CoresPerNode,
		Seed:        1,
	}
}

func (c Config) params() params.Params {
	p := params.Default()
	if c.NodeDRAM > 0 {
		p.NodeDRAMBytes = c.NodeDRAM
	}
	if c.CXLCapacity > 0 {
		p.CXLBytes = c.CXLCapacity
	}
	if c.CXLLatency > 0 {
		p.CXLLatency = des.Time(c.CXLLatency)
	}
	if c.LLC > 0 {
		p.LLCBytes = c.LLC
	}
	if c.Cores > 0 {
		p.CoresPerNode = c.Cores
	}
	if c.CheckpointLanes > 0 {
		p.CheckpointLanes = c.CheckpointLanes
	}
	if c.RestoreLanes > 0 {
		p.RestoreLanes = c.RestoreLanes
	}
	if c.Trace {
		p.TraceEnabled = true
	}
	if c.TraceBufferCap > 0 {
		p.TraceBufferCap = c.TraceBufferCap
	}
	if c.Capacity.EvictPolicy != "" {
		p.EvictPolicy = c.Capacity.EvictPolicy
	}
	if c.Capacity.HighWatermark > 0 {
		p.CXLHighWatermark = c.Capacity.HighWatermark
	}
	if c.Capacity.LowWatermark > 0 {
		p.CXLLowWatermark = c.Capacity.LowWatermark
	}
	if c.Capacity.ReclaimPeriod > 0 {
		p.CXLReclaimPeriod = des.Time(c.Capacity.ReclaimPeriod)
	}
	if c.Replication.Devices > 0 {
		p.CXLDevices = c.Replication.Devices
	}
	if c.Replication.Factor > 0 {
		p.ReplicationFactor = c.Replication.Factor
	}
	if c.Replication.RepairPeriod > 0 {
		p.RepairPeriod = des.Time(c.Replication.RepairPeriod)
	}
	if c.Replication.RepairBandwidthPages > 0 {
		p.RepairBandwidthPages = c.Replication.RepairBandwidthPages
	}
	if c.Replication.RetryBudget > 0 {
		p.RestoreRetryBudget = c.Replication.RetryBudget
	}
	if c.Replication.RetryBackoff > 0 {
		p.RestoreRetryBackoff = des.Time(c.Replication.RetryBackoff)
	}
	if c.Replication.RetryBackoffCap > 0 {
		p.RestoreRetryBackoffCap = des.Time(c.Replication.RetryBackoffCap)
	}
	if c.Replication.FailoverTimeout > 0 {
		p.ReplicaFailoverTimeout = des.Time(c.Replication.FailoverTimeout)
	}
	if c.Fabric.Topology != "" {
		p.Topology = c.Fabric.Topology
	}
	if c.Fabric.Placement != "" {
		p.PlacementPolicy = c.Fabric.Placement
	}
	if c.Telemetry.Enabled {
		p.TelemetryEnabled = true
	}
	if c.Telemetry.SampleEvery > 0 {
		p.SampleEvery = des.Time(c.Telemetry.SampleEvery)
	}
	if c.Telemetry.SeriesCap > 0 {
		p.TelemetrySeriesCap = c.Telemetry.SeriesCap
	}
	if c.Telemetry.SLOOccupancy > 0 {
		p.SLOOccupancy = c.Telemetry.SLOOccupancy
		p.SLODriveReclaim = c.Telemetry.SLODrive
	}
	if c.Telemetry.SLOColdStartP99 > 0 {
		p.SLOColdStartP99 = des.Time(c.Telemetry.SLOColdStartP99)
	}
	if c.Workers > 1 {
		p.SimWorkers = c.Workers
	}
	if c.XRay {
		p.XRayEnabled = true
	}
	if c.XRayExemplars > 0 {
		p.XRayExemplars = c.XRayExemplars
	}
	return p
}

// MechanismKind selects a remote-fork implementation.
type MechanismKind int

// Remote-fork mechanisms.
const (
	// CXLfork is the paper's contribution: zero-copy, zero-serialization
	// remote fork over shared CXL memory.
	CXLfork MechanismKind = iota
	// CRIUCXL is the state-of-practice baseline: serialized image files
	// on an in-CXL-memory filesystem.
	CRIUCXL
	// MitosisCXL is the state-of-the-art baseline: parent-coupled shadow
	// checkpoint with lazy remote paging over CXL.
	MitosisCXL
)

func (m MechanismKind) String() string {
	switch m {
	case CRIUCXL:
		return "CRIU-CXL"
	case MitosisCXL:
		return "Mitosis-CXL"
	default:
		return "CXLfork"
	}
}

// TieringPolicy controls where restored state lives (paper §4.3).
type TieringPolicy int

// Tiering policies (CXLfork restores only).
const (
	// MigrateOnWrite shares read-only state from CXL and copies pages
	// locally only on stores (default).
	MigrateOnWrite TieringPolicy = iota
	// MigrateOnAccess copies every touched page to local memory.
	MigrateOnAccess
	// HybridTiering copies pages whose checkpointed Accessed (or
	// user-declared hot) bit is set; cold pages stay on CXL.
	HybridTiering
)

func (t TieringPolicy) String() string { return rfork.Policy(t).String() }

// RestoreOptions tunes a restore.
type RestoreOptions struct {
	// Policy selects the tiering policy (CXLfork only).
	Policy TieringPolicy
	// DisableDirtyPrefetch turns off the opportunistic copy of
	// checkpoint-dirty pages (ablation).
	DisableDirtyPrefetch bool
	// NaivePageTables copies checkpointed page-table leaves instead of
	// attaching them (ablation).
	NaivePageTables bool
	// SyncHotPrefetch prefetches hot pages synchronously during restore
	// under hybrid tiering (the design the paper rejects; ablation).
	SyncHotPrefetch bool
}

func (o RestoreOptions) internal() rfork.Options {
	return rfork.Options{
		Policy:          rfork.Policy(o.Policy),
		NoDirtyPrefetch: o.DisableDirtyPrefetch,
		NaivePTCopy:     o.NaivePageTables,
		SyncHotPrefetch: o.SyncHotPrefetch,
	}
}

// System is a simulated CXL-interconnected cluster.
//
// A System is not safe for concurrent use: the simulation is
// single-threaded and advances one shared virtual clock. Concurrency in
// experiments (e.g. the autoscaler) is expressed through the event
// queue, not goroutines.
type System struct {
	c    *cluster.Cluster
	rng  *rand.Rand
	mech map[MechanismKind]rfork.Mechanism
	reg  map[string]bool // functions with registered+warmed images
}

// NewSystem boots a cluster.
func NewSystem(cfg Config) *System {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	c := cluster.MustNew(cfg.params(), cfg.Nodes)
	c.Faults.Reseed(cfg.Seed)
	// DeviceLoss rules are clock-driven: arm them now so rules injected
	// at any point fire at their At offset and kill the pool device.
	c.Faults.ArmDeviceLoss(func(dev int) { c.Pool.Fail(dev) })
	coreMech := core.New(c.Dev)
	coreMech.Faults = c.Faults
	criuMech := criu.New(c.CXLFS)
	criuMech.Faults = c.Faults
	mitMech := mitosis.New()
	mitMech.Faults = c.Faults
	return &System{
		c:   c,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		mech: map[MechanismKind]rfork.Mechanism{
			CXLfork:    coreMech,
			CRIUCXL:    criuMech,
			MitosisCXL: mitMech,
		},
		reg: make(map[string]bool),
	}
}

// checkNode validates a node index against the cluster size.
func (s *System) checkNode(node int) error {
	if node < 0 || node >= len(s.c.Nodes) {
		return fmt.Errorf("cxlfork: node %d out of range [0,%d)", node, len(s.c.Nodes))
	}
	return nil
}

// Now returns the virtual clock.
func (s *System) Now() time.Duration { return time.Duration(s.c.Eng.Now()) }

// Sleep idles the cluster for d of virtual time, firing any events
// scheduled inside the window — in particular pending DeviceLoss
// faults, which are clock-driven rather than step-matched.
func (s *System) Sleep(d time.Duration) {
	s.c.Eng.RunUntil(s.c.Eng.Now() + des.Time(d))
}

// Nodes returns the node count.
func (s *System) Nodes() int { return len(s.c.Nodes) }

// NodeMemoryUsed returns node i's local DRAM usage in bytes.
func (s *System) NodeMemoryUsed(node int) int64 {
	return s.c.Node(node).Mem.UsedBytes()
}

// CXLMemoryUsed returns the shared pool occupancy in bytes (healthy
// devices only; identical to the single device's occupancy when
// Replication.Devices is unset).
func (s *System) CXLMemoryUsed() int64 { return s.c.Pool.UsedBytes() }

// Devices returns the CXL pool size (1 unless Replication.Devices).
func (s *System) Devices() int { return s.c.Pool.N() }

// checkDevice validates a pool device index.
func (s *System) checkDevice(dev int) error {
	if dev < 0 || dev >= s.c.Pool.N() {
		return fmt.Errorf("cxlfork: device %d out of range [0,%d)", dev, s.c.Pool.N())
	}
	return nil
}

// FailDevice permanently kills pool device dev right now — the manual
// counterpart of a DeviceLoss fault rule. Every arena and frame on the
// device becomes unrecoverable; later allocations against it return
// ErrDeviceFailed. There is no revive: expander loss is terminal
// (DESIGN.md §12).
func (s *System) FailDevice(dev int) error {
	if err := s.checkDevice(dev); err != nil {
		return err
	}
	s.c.Pool.Fail(dev)
	return nil
}

// DeviceFailed reports whether pool device dev has been killed by a
// DeviceLoss fault or FailDevice.
func (s *System) DeviceFailed(dev int) bool {
	return dev >= 0 && dev < s.c.Pool.N() && s.c.Pool.Failed(dev)
}

// FunctionNames lists the built-in workload suite (Table 1).
func FunctionNames() []string {
	var out []string
	for _, sp := range faas.Suite() {
		out = append(out, sp.Name)
	}
	return out
}

// Function is a live function instance on some node.
type Function struct {
	sys  *System
	in   *faas.Instance
	node int
}

// ensureImage registers the function's image files and pre-pulls them on
// every node (done once per function).
func (s *System) ensureImage(spec faas.Spec) error {
	if s.reg[spec.Name] {
		return nil
	}
	faas.RegisterFiles(s.c.FS, s.c.P, spec)
	for _, n := range s.c.Nodes {
		if err := faas.WarmLibraries(n, spec); err != nil {
			return err
		}
	}
	s.reg[spec.Name] = true
	return nil
}

// DeployFunction cold-starts one of the built-in functions on a node:
// the address space is created and state initialization runs in full.
func (s *System) DeployFunction(node int, name string) (*Function, error) {
	if err := s.checkNode(node); err != nil {
		return nil, err
	}
	spec, ok := faas.ByName(name)
	if !ok {
		return nil, fmt.Errorf("cxlfork: unknown function %q (see FunctionNames)", name)
	}
	if err := s.ensureImage(spec); err != nil {
		return nil, err
	}
	in, err := faas.NewInstance(s.c.Node(node), spec)
	if err != nil {
		return nil, err
	}
	if err := in.ColdInit(); err != nil {
		in.Exit()
		return nil, err
	}
	return &Function{sys: s, in: in, node: node}, nil
}

// Name returns the function name.
func (f *Function) Name() string { return f.in.Spec.Name }

// Node returns the hosting node index.
func (f *Function) Node() int { return f.node }

// Invoke runs one invocation and returns its virtual duration.
func (f *Function) Invoke() (time.Duration, error) {
	d, err := f.in.Invoke(f.sys.rng)
	return time.Duration(d), err
}

// Warmup runs n invocations (the paper checkpoints after the 16th so
// JIT-style initialization has settled, §5), then clears the A/D bits so
// a subsequent checkpoint captures the steady-state access pattern.
func (f *Function) Warmup(n int) error {
	if n >= 1 {
		if _, err := f.in.Invoke(f.sys.rng); err != nil {
			return err
		}
		f.in.Task.MM.PT.ClearABits()
		f.in.Task.MM.PT.ClearDirtyBits()
		n--
	}
	return f.in.Warmup(n, f.sys.rng)
}

// ResidentLocalBytes returns the instance's node-local resident memory.
func (f *Function) ResidentLocalBytes() int64 {
	return int64(f.in.Task.MM.ResidentLocalPages()) * int64(f.sys.c.P.PageSize)
}

// ResidentCXLBytes returns bytes the instance maps directly from CXL.
func (f *Function) ResidentCXLBytes() int64 {
	return int64(f.in.Task.MM.ResidentCXLPages()) * int64(f.sys.c.P.PageSize)
}

// FaultCounts returns the instance's page-fault breakdown by kind.
func (f *Function) FaultCounts() map[string]int64 {
	out := make(map[string]int64)
	st := &f.in.Task.MM.Stats.Faults
	for _, k := range []kernel.FaultKind{
		kernel.FaultAnon, kernel.FaultFileMinor, kernel.FaultFileMajor,
		kernel.FaultCoWLocal, kernel.FaultCoWCXL, kernel.FaultMoA,
		kernel.FaultCXLDirect, kernel.FaultMaterialize, kernel.FaultPrefetch,
	} {
		if n := st.Count(k); n != 0 {
			out[k.String()] = n
		}
	}
	return out
}

// Exit tears the instance down, freeing its local memory.
func (f *Function) Exit() { f.in.Exit() }

// AddressSpace renders the instance's VMA layout, one mapping per line
// (start-end, permissions, backing, name).
func (f *Function) AddressSpace() []string {
	var out []string
	f.in.Task.MM.VMAs.Walk(func(v vma.VMA) {
		out = append(out, v.String())
	})
	return out
}

// Descriptors renders the instance's open descriptor table.
func (f *Function) Descriptors() []string {
	var out []string
	for _, fd := range f.in.Task.FDs.All() {
		out = append(out, fmt.Sprintf("fd %-3d %-6s %s", fd.Num, fd.Kind, fd.Path))
	}
	return out
}

// Fork clones the function locally with plain fork() semantics
// (copy-on-write sharing with the parent on the same node).
func (f *Function) Fork() (*Function, error) {
	child, err := f.sys.c.Node(f.node).Fork(f.in.Task, f.Name()+"-child")
	if err != nil {
		return nil, err
	}
	return &Function{sys: f.sys, in: faas.Adopt(child, f.in.Spec), node: f.node}, nil
}

// Checkpoint is a mechanism-specific process checkpoint.
type Checkpoint struct {
	sys  *System
	img  rfork.Image
	spec faas.Spec
	kind MechanismKind
}

// Checkpoint captures a function's state with the chosen mechanism.
func (s *System) Checkpoint(f *Function, mech MechanismKind, id string) (*Checkpoint, error) {
	m, ok := s.mech[mech]
	if !ok {
		return nil, fmt.Errorf("cxlfork: unknown mechanism %v", mech)
	}
	img, err := m.Checkpoint(f.in.Task, id)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{sys: s, img: img, spec: f.in.Spec, kind: mech}, nil
}

// ID returns the checkpoint ID.
func (c *Checkpoint) ID() string { return c.img.ID() }

// Mechanism returns the creating mechanism.
func (c *Checkpoint) Mechanism() MechanismKind { return c.kind }

// CXLBytes returns device capacity the checkpoint holds.
func (c *Checkpoint) CXLBytes() int64 { return c.img.CXLBytes() }

// ParentLocalBytes returns parent-node local memory the checkpoint pins
// (non-zero only for Mitosis-CXL, whose design couples the image to the
// parent node, §3.1).
func (c *Checkpoint) ParentLocalBytes() int64 { return c.img.LocalBytes() }

// Pages returns the number of checkpointed data pages.
func (c *Checkpoint) Pages() int { return c.img.Pages() }

// Release drops the caller's reference; storage is reclaimed when the
// last clone exits.
func (c *Checkpoint) Release() { c.img.Release() }

// ClearAccessBits clears the checkpoint's Accessed bits in place — the
// interface CXLporter uses to re-estimate hot pages (CXLfork only).
func (c *Checkpoint) ClearAccessBits() (int, error) {
	ck, ok := c.img.(*core.Checkpoint)
	if !ok {
		return 0, fmt.Errorf("cxlfork: %v checkpoints have no A-bit interface", c.kind)
	}
	return ck.ClearABits(), nil
}

// Info describes a checkpoint's layout.
type Info struct {
	ID              string
	Mechanism       string
	DataPages       int
	DirtyPages      int
	FilePages       int
	VMAs            int
	PageTableLeaves int
	VMALeaves       int
	CXLBytes        int64
	ParentBytes     int64
	Refs            int
}

// Describe returns the checkpoint's layout details (richest for CXLfork
// checkpoints, whose OS structures live rebased on the device).
func (c *Checkpoint) Describe() Info {
	info := Info{
		ID:          c.img.ID(),
		Mechanism:   c.img.Mechanism(),
		DataPages:   c.img.Pages(),
		CXLBytes:    c.img.CXLBytes(),
		ParentBytes: c.img.LocalBytes(),
		Refs:        c.img.Refs(),
	}
	if ck, ok := c.img.(*core.Checkpoint); ok {
		info.DirtyPages = ck.DirtyPages()
		info.FilePages = ck.FilePages()
		info.VMAs = ck.VMACount()
		info.PageTableLeaves = ck.PTLeaves()
		info.VMALeaves = ck.VMALeaves()
	}
	return info
}

// Restore clones the checkpointed function into a fresh process on the
// given node and returns it ready to invoke.
func (s *System) Restore(node int, c *Checkpoint, opts RestoreOptions) (*Function, error) {
	if err := s.checkNode(node); err != nil {
		return nil, err
	}
	if err := s.ensureImage(c.spec); err != nil {
		return nil, err
	}
	child := s.c.Node(node).NewTask(c.spec.Name + "-clone")
	if err := s.mech[c.kind].Restore(child, c.img, opts.internal()); err != nil {
		s.c.Node(node).Exit(child)
		return nil, err
	}
	return &Function{sys: s, in: faas.Adopt(child, c.spec), node: node}, nil
}

// FaultKind selects an injectable fault class.
type FaultKind = faultinject.Kind

// Injectable fault kinds.
const (
	// CrashNode kills the node executing the matched step; it stays down
	// until ReviveNode.
	CrashNode = faultinject.CrashNode
	// DeviceFull fails the matched step with ErrDeviceFull once, without
	// the device actually being full.
	DeviceFull = faultinject.DeviceFull
	// FabricDegrade multiplies CXL transfer latencies by Factor for a
	// Window of virtual time.
	FabricDegrade = faultinject.FabricDegrade
	// CorruptBlob flips one seeded-random bit in the matched
	// checkpoint's serialized state.
	CorruptBlob = faultinject.CorruptBlob
	// DeviceLoss permanently fails pool device Rule.Device at virtual
	// offset Rule.At — clock-driven, not step-matched. Checkpoint
	// replicas on surviving devices stay restorable (DESIGN.md §12).
	DeviceLoss = faultinject.DeviceLoss
)

// Step boundaries a FaultRule can match (empty Step matches any).
const (
	StepCheckpointVMA    = faultinject.StepCheckpointVMA
	StepCheckpointPT     = faultinject.StepCheckpointPT
	StepCheckpointGlobal = faultinject.StepCheckpointGlobal
	StepRestoreAttach    = faultinject.StepRestoreAttach
	StepPorterRestore    = faultinject.StepPorterRestore
)

// AnyNode is the wildcard for FaultRule.Node.
const AnyNode = faultinject.AnyNode

// FaultRule describes one injectable fault; see the field docs on
// faultinject.Rule. Rules fire deterministically by occurrence count,
// except DeviceLoss rules, which fire on the virtual clock at offset
// Rule.At from injection.
type FaultRule = faultinject.Rule

// InjectFault registers a fault rule on the system's plan. Faults fire
// at step boundaries during Checkpoint/Restore (DeviceLoss: on the
// virtual clock) and replay identically under the same Config.Seed.
func (s *System) InjectFault(r FaultRule) { s.c.Faults.Inject(r) }

// RecoverStats reports what a RecoverDevice pass reclaimed.
type RecoverStats = cxl.RecoverStats

// RecoverDevice garbage-collects torn (unsealed) checkpoint arenas left
// on the CXL device by nodes that crashed mid-checkpoint, reclaiming
// their frames and metadata.
func (s *System) RecoverDevice() RecoverStats {
	st := s.c.Dev.Recover()
	s.c.Faults.Counters.RecoveredBytes.Add(st.Total())
	return st
}

// NodeIsDown reports whether a node has been crashed by a fault.
func (s *System) NodeIsDown(node int) bool { return s.c.Faults.NodeDown(node) }

// ReviveNode brings a crashed node back. Its tasks are gone; sealed
// checkpoints on the shared device remain usable.
func (s *System) ReviveNode(node int) { s.c.Faults.Revive(node) }

// DegradeFabric opens a fabric-degradation window immediately: CXL
// transfer costs are multiplied by factor until window has elapsed on
// the virtual clock.
func (s *System) DegradeFabric(factor float64, window time.Duration) {
	s.c.Faults.Degrade(factor, des.Time(window))
}

// FaultStats summarizes fault activity and recovery work so far.
type FaultStats struct {
	// Injected is the number of faults fired by injection rules.
	Injected int64
	// Retries counts operations re-attempted after a fault.
	Retries int64
	// Fallbacks counts degradations to a slower path (e.g. cold start).
	Fallbacks int64
	// RecoveredBytes counts bytes reclaimed from torn checkpoints.
	RecoveredBytes int64
}

// FaultStats returns the system's fault counters.
func (s *System) FaultStats() FaultStats {
	c := &s.c.Faults.Counters
	return FaultStats{
		Injected:       c.Injected.Value(),
		Retries:        c.Retries.Value(),
		Fallbacks:      c.Fallbacks.Value(),
		RecoveredBytes: c.RecoveredBytes.Value(),
	}
}

// DedupStats summarizes the CXL device's content-addressed frame dedup
// cache: checkpoint page writes satisfied by an existing identical
// frame (Hits) vs. fresh copies (Misses), and the fabric write bytes
// hits elided. Repeated checkpoints of the same function dedup almost
// entirely against the first image.
type DedupStats struct {
	Hits       int64
	Misses     int64
	BytesSaved int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (d DedupStats) HitRate() float64 {
	total := d.Hits + d.Misses
	if total == 0 {
		return 0
	}
	return float64(d.Hits) / float64(total)
}

// DedupStats returns the device's frame-dedup counters.
func (s *System) DedupStats() DedupStats {
	c := &s.c.Dev.Dedup
	return DedupStats{
		Hits:       c.Hits.Value(),
		Misses:     c.Misses.Value(),
		BytesSaved: c.BytesSaved.Value(),
	}
}

// CapacityStats is a point-in-time breakdown of shared-device occupancy
// by what eviction could actually get back. Because checkpoint frames
// are dedup-shared across images, an image's declared footprint is not
// what releasing it frees; this split is computed from frame refcounts.
type CapacityStats struct {
	// UsedBytes is total device occupancy (frames + metadata).
	UsedBytes int64
	// CapacityBytes is the device size (Config.CXLCapacity).
	CapacityBytes int64
	// Checkpoints is the number of live checkpoint arenas.
	Checkpoints int
	// MetaBytes is checkpointed OS-structure bytes (page-table leaves,
	// VMA leaves, globals) — always exclusive to one image.
	MetaBytes int64
	// ExclusiveBytes is data-frame bytes referenced by exactly one
	// image: the capacity evicting the owners would free.
	ExclusiveBytes int64
	// SharedBytes is data-frame bytes dedup-shared by several images,
	// each distinct frame counted once; eviction of a single owner
	// frees none of it.
	SharedBytes int64
}

// Utilization returns UsedBytes / CapacityBytes.
func (c CapacityStats) Utilization() float64 {
	if c.CapacityBytes == 0 {
		return 0
	}
	return float64(c.UsedBytes) / float64(c.CapacityBytes)
}

// CapacityStats returns the device's occupancy breakdown: how much of
// the used capacity is exclusive to single checkpoints (reclaimable by
// eviction) versus dedup-shared across them.
func (s *System) CapacityStats() CapacityStats {
	o := s.c.Dev.Occupancy()
	return CapacityStats{
		UsedBytes:      s.c.Dev.UsedBytes(),
		CapacityBytes:  s.c.Dev.CapacityBytes(),
		Checkpoints:    o.Arenas,
		MetaBytes:      o.Meta,
		ExclusiveBytes: o.ExclusiveFrames,
		SharedBytes:    o.SharedFrames,
	}
}

// TraceEnabled reports whether the system records a virtual-time trace
// (Config.Trace).
func (s *System) TraceEnabled() bool { return s.c.Trace.Enabled() }

// TraceEventCount returns the number of recorded trace spans.
func (s *System) TraceEventCount() int { return s.c.Trace.Len() }

// TraceDropped returns how many spans the bounded trace buffer
// rejected (0 unless the scenario outgrew Config.TraceBufferCap).
func (s *System) TraceDropped() int64 { return s.c.Trace.Dropped() }

// WriteTrace writes the recorded trace as Chrome trace_event JSON,
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing. Under the
// same Config and operation sequence the output is byte-identical.
func (s *System) WriteTrace(w io.Writer) error {
	if !s.c.Trace.Enabled() {
		return fmt.Errorf("cxlfork: tracing disabled (set Config.Trace)")
	}
	return s.c.Trace.WriteChrome(w)
}

// WriteTraceCritical is WriteTrace with each root operation's critical
// path marked ("critical":1 in the span's args): the deepest chain of
// child spans that set the operation's end-to-end latency
// (DESIGN.md §16). Readers unaware of the key parse the file exactly
// as WriteTrace's.
func (s *System) WriteTraceCritical(w io.Writer) error {
	if !s.c.Trace.Enabled() {
		return fmt.Errorf("cxlfork: tracing disabled (set Config.Trace)")
	}
	return s.c.Trace.WriteChromeCritical(w)
}

// PhaseLatency is one phase's latency distribution from the trace's
// per-phase histograms. Phase names are "cat/name" (e.g.
// "phase/struct-copy", "op/checkpoint", "fault/cow-cxl").
type PhaseLatency struct {
	Phase string
	Count int
	Total time.Duration
	Mean  time.Duration
	P99   time.Duration
	Max   time.Duration
}

// TracePhases returns the trace's per-phase latency summaries, sorted
// by phase name. Nil when tracing is disabled.
func (s *System) TracePhases() []PhaseLatency {
	ps := s.c.Trace.Phases()
	if ps == nil {
		return nil
	}
	var out []PhaseLatency
	for _, name := range ps.Phases() {
		r := ps.Recorder(name)
		out = append(out, PhaseLatency{
			Phase: name,
			Count: r.Count(),
			Total: time.Duration(r.Sum()),
			Mean:  time.Duration(r.Mean()),
			P99:   time.Duration(r.P99()),
			Max:   time.Duration(r.Max()),
		})
	}
	return out
}

// XRayEnabled reports whether the system runs critical-path latency
// attribution (Config.XRay).
func (s *System) XRayEnabled() bool { return s.c.XRay.Enabled() }

// XRayReport builds a critical-path attribution report from the
// recorded trace: every op span becomes a request whose direct phase
// children are its blame components, with the remainder reported as
// residual (DESIGN.md §16). Requires both Config.XRay and Config.Trace;
// workload runs driven by RunWorkload instead get the porter's exact
// per-request decomposition on RunReport.XRay.
func (s *System) XRayReport() (*xray.Report, error) {
	if !s.c.XRay.Enabled() {
		return nil, fmt.Errorf("cxlfork: attribution disabled (set Config.XRay)")
	}
	if !s.c.Trace.Enabled() {
		return nil, fmt.Errorf("cxlfork: attribution over ops needs a trace (set Config.Trace)")
	}
	return xray.FromSpans(s.c.Trace.Events(), s.c.P.XRayExemplars), nil
}

// MetricsFormat selects a telemetry export encoding for WriteMetrics.
type MetricsFormat string

// Supported telemetry export formats: Prometheus text exposition,
// OpenMetrics, and CSV/JSON timeline dumps.
const (
	MetricsPrometheus  MetricsFormat = "prometheus"
	MetricsOpenMetrics MetricsFormat = "openmetrics"
	MetricsCSV         MetricsFormat = "csv"
	MetricsJSON        MetricsFormat = "json"
)

// TelemetryEnabled reports whether the system samples telemetry
// (Config.Telemetry.Enabled).
func (s *System) TelemetryEnabled() bool { return s.c.Telem.Enabled() }

// Snapshot samples every registered telemetry series at the current
// virtual instant — the facade's on-demand tick for scenarios that are
// not driven by the autoscaler's sampling loop. It errors when
// telemetry is disabled.
func (s *System) Snapshot() error {
	if !s.c.Telem.Enabled() {
		return fmt.Errorf("cxlfork: telemetry disabled (set Config.Telemetry.Enabled)")
	}
	s.c.Telem.Sample(s.c.Eng.Now())
	return nil
}

// TelemetrySamples returns how many sample ticks have run.
func (s *System) TelemetrySamples() int64 { return s.c.Telem.Ticks() }

// TelemetryDropped returns how many samples the bounded series rings
// overwrote (0 unless a run outgrew Config.Telemetry.SeriesCap).
func (s *System) TelemetryDropped() int64 { return s.c.Telem.Dropped() }

// WriteMetrics writes the sampled telemetry in the given format; see
// MetricsFormat for the encodings. It errors when telemetry is
// disabled or the format is unknown.
func (s *System) WriteMetrics(w io.Writer, format MetricsFormat) error {
	if !s.c.Telem.Enabled() {
		return fmt.Errorf("cxlfork: telemetry disabled (set Config.Telemetry.Enabled)")
	}
	switch format {
	case MetricsPrometheus:
		return s.c.Telem.WritePrometheus(w)
	case MetricsOpenMetrics:
		return s.c.Telem.WriteOpenMetrics(w)
	case MetricsCSV:
		return s.c.Telem.WriteCSV(w)
	case MetricsJSON:
		return s.c.Telem.WriteJSON(w)
	}
	return fmt.Errorf("cxlfork: unknown metrics format %q", format)
}
