package cxlfork_test

import (
	"fmt"

	"cxlfork"
)

// ExampleSystem_Checkpoint demonstrates the core remote-fork flow:
// checkpoint a warmed function into CXL memory, restore a clone on
// another node, and observe the checkpoint's layout.
func ExampleSystem_Checkpoint() {
	sys := cxlfork.NewSystem(cxlfork.DefaultConfig())

	fn, err := sys.DeployFunction(0, "Float")
	if err != nil {
		panic(err)
	}
	if err := fn.Warmup(16); err != nil {
		panic(err)
	}
	ck, err := sys.Checkpoint(fn, cxlfork.CXLfork, "float-v1")
	if err != nil {
		panic(err)
	}
	fn.Exit() // the checkpoint is decoupled from the parent

	clone, err := sys.Restore(1, ck, cxlfork.RestoreOptions{})
	if err != nil {
		panic(err)
	}
	if _, err := clone.Invoke(); err != nil {
		panic(err)
	}

	info := ck.Describe()
	fmt.Printf("mechanism: %s\n", info.Mechanism)
	fmt.Printf("checkpointed pages: %d (%d file-backed)\n", info.DataPages, info.FilePages)
	fmt.Printf("clone shares CXL state: %v\n", clone.ResidentCXLBytes() > clone.ResidentLocalBytes())
	// Output:
	// mechanism: CXLfork
	// checkpointed pages: 6512 (3584 file-backed)
	// clone shares CXL state: true
}

// ExampleSystem_Restore_tiering shows how tiering policies trade local
// memory for access locality on a restored clone.
func ExampleSystem_Restore_tiering() {
	sys := cxlfork.NewSystem(cxlfork.DefaultConfig())
	fn, _ := sys.DeployFunction(0, "Float")
	_ = fn.Warmup(16)
	ck, _ := sys.Checkpoint(fn, cxlfork.CXLfork, "f")

	mow, _ := sys.Restore(1, ck, cxlfork.RestoreOptions{Policy: cxlfork.MigrateOnWrite})
	moa, _ := sys.Restore(1, ck, cxlfork.RestoreOptions{Policy: cxlfork.MigrateOnAccess})
	_, _ = mow.Invoke()
	_, _ = moa.Invoke()

	fmt.Printf("migrate-on-write keeps less local: %v\n",
		mow.ResidentLocalBytes() < moa.ResidentLocalBytes())
	fmt.Printf("migrate-on-access leaves nothing on CXL: %v\n", moa.ResidentCXLBytes() == 0)
	// Output:
	// migrate-on-write keeps less local: true
	// migrate-on-access leaves nothing on CXL: true
}

// ExampleFunctionNames lists the built-in Table-1 workload suite.
func ExampleFunctionNames() {
	for _, name := range cxlfork.FunctionNames()[:3] {
		fmt.Println(name)
	}
	// Output:
	// Float
	// Linpack
	// Json
}
