package cxlfork

import (
	"fmt"
	"io"
	"time"

	"cxlfork/internal/azure"
	"cxlfork/internal/des"
	"cxlfork/internal/experiments"
	"cxlfork/internal/faas"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
)

// AutoscalerConfig tunes a CXLporter deployment (paper §5).
type AutoscalerConfig struct {
	// Mechanism is the remote-fork design used to spawn instances.
	Mechanism MechanismKind
	// StaticPolicy pins the tiering policy; nil enables the dynamic
	// SLO/memory-driven adaptation when DynamicTiering is set.
	StaticPolicy *TieringPolicy
	// DynamicTiering enables the adaptive policy controller.
	DynamicTiering bool
	// Functions is the workload mix (default: the full Table-1 suite).
	Functions []string
	// RPS is the aggregate arrival rate (paper: 150).
	RPS float64
	// Duration is the trace length in virtual time.
	Duration time.Duration
	// NodeBudget is the per-node memory budget in bytes (0: node DRAM).
	NodeBudget int64
	// Seed drives trace generation and jitter.
	Seed int64
	// Trace, when non-empty, replaces the built-in bursty generator
	// with explicit arrivals (e.g. loaded from a production trace CSV
	// via LoadTraceCSV). Functions referenced must appear in Functions
	// or the Table-1 suite.
	Trace []Arrival
}

// Arrival is one request arrival of an explicit trace.
type Arrival struct {
	At       time.Duration
	Function string
}

// ScalingResults summarizes an autoscaler trace replay.
type ScalingResults struct {
	P50, P99, Mean time.Duration
	PerFunctionP99 map[string]time.Duration
	Completed      int
	ColdForks      int
	ScratchCold    int
	WarmStarts     int
	Evictions      int
	Promotions     int
	// Throughput is requests completed within the arrival window per
	// second of makespan.
	Throughput float64
}

// LoadTraceCSV reads an explicit arrival trace ("seconds,function" CSV,
// header optional) for AutoscalerConfig.Trace.
func LoadTraceCSV(r io.Reader) ([]Arrival, error) {
	reqs, err := azure.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	out := make([]Arrival, len(reqs))
	for i, rq := range reqs {
		out[i] = Arrival{At: time.Duration(rq.At), Function: rq.Function}
	}
	return out, nil
}

// SaveTraceCSV writes a synthetic bursty trace over the given functions
// so it can be inspected or replayed elsewhere.
func SaveTraceCSV(w io.Writer, functions []string, rps float64, duration time.Duration, seed int64) error {
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: rps,
		Duration: des.Time(duration),
		Loads:    azure.DefaultLoads(functions),
		Seed:     seed,
	})
	return azure.WriteCSV(w, trace)
}

// RunAutoscaler deploys CXLporter on the system, checkpoints every
// function in the mix, replays a bursty arrival trace (an Azure-like
// MMPP), and reports latency percentiles. Profiles for the queue model
// are calibrated with mechanistic single-instance runs first, so the
// call is self-contained but not cheap.
func (s *System) RunAutoscaler(cfg AutoscalerConfig) (ScalingResults, error) {
	if cfg.RPS <= 0 {
		cfg.RPS = 150
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	names := cfg.Functions
	if len(names) == 0 {
		names = FunctionNames()
	}
	var specs []faas.Spec
	for _, n := range names {
		sp, ok := faas.ByName(n)
		if !ok {
			return ScalingResults{}, fmt.Errorf("cxlfork: unknown function %q", n)
		}
		specs = append(specs, sp)
	}

	ms, err := experiments.MeasureAll(s.c.P, specs, experiments.AllScenarios)
	if err != nil {
		return ScalingResults{}, fmt.Errorf("cxlfork: calibrating profiles: %w", err)
	}

	pcfg := porter.Config{
		Mechanism:       s.mech[cfg.Mechanism],
		Profiles:        experiments.BuildProfiles(ms),
		DynamicTiering:  cfg.DynamicTiering,
		NodeBudgetBytes: cfg.NodeBudget,
		Seed:            cfg.Seed,
	}
	if cfg.StaticPolicy != nil {
		pol := rfork.Policy(*cfg.StaticPolicy)
		pcfg.StaticPolicy = &pol
	}
	po := porter.New(s.c, pcfg)
	if err := po.Setup(specs); err != nil {
		return ScalingResults{}, err
	}
	var trace []azure.Request
	if len(cfg.Trace) > 0 {
		for _, a := range cfg.Trace {
			trace = append(trace, azure.Request{At: des.Time(a.At), Function: a.Function})
		}
	} else {
		trace = azure.Generate(azure.TraceConfig{
			TotalRPS: cfg.RPS,
			Duration: des.Time(cfg.Duration),
			Loads:    azure.DefaultLoads(names),
			Seed:     cfg.Seed,
		})
	}
	res := po.Run(trace)

	out := ScalingResults{
		P50:            time.Duration(res.Overall.P50()),
		P99:            time.Duration(res.Overall.P99()),
		Mean:           time.Duration(res.Overall.Mean()),
		PerFunctionP99: make(map[string]time.Duration),
		Completed:      res.Completed,
		ColdForks:      res.ColdForks,
		ScratchCold:    res.ScratchCold,
		WarmStarts:     res.WarmStarts,
		Evictions:      res.Evictions,
		Promotions:     res.PolicyPromotions,
		Throughput:     res.Throughput(),
	}
	for fn, rec := range res.PerFunction {
		if rec.Count() > 0 {
			out.PerFunctionP99[fn] = time.Duration(rec.P99())
		}
	}
	return out, nil
}
