package cxlfork

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §3), plus ablations of the design choices the
// paper calls out. Each iteration regenerates the experiment's data from
// the mechanistic simulation; the custom metrics report the series the
// paper plots (latencies in virtual milliseconds, ratios). Run with
//
//	go test -bench=. -benchmem
//
// The full-figure benchmarks are heavy (seconds per iteration); use
// -benchtime=1x for a single regeneration.

import (
	"testing"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/experiments"
	"cxlfork/internal/faas"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
	"cxlfork/internal/workflow"
)

// benchSpecs is a representative subset (one small cache-resident, one
// mid, one large cache-thrashing) used by per-figure benchmarks so an
// iteration stays in seconds; cmd/cxlsim regenerates figures over the
// full suite.
func benchSpecs() []faas.Spec {
	var out []faas.Spec
	for _, name := range []string{"Float", "Rnn", "Bert"} {
		s, _ := faas.ByName(name)
		out = append(out, s)
	}
	return out
}

func BenchmarkTable1Suite(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		for _, s := range faas.Suite() {
			l := faas.ComputeLayout(p, s)
			if l.TotalPages() == 0 {
				b.Fatal("empty layout")
			}
		}
	}
}

func BenchmarkFig1Breakdown(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(p, 16)
		if err != nil {
			b.Fatal(err)
		}
		var init float64
		for _, bd := range r.Breakdowns {
			init += bd.InitFrac
		}
		b.ReportMetric(100*init/float64(len(r.Breakdowns)), "init-%")
	}
}

func BenchmarkFig3cBertMotivation(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3c(p)
		if err != nil {
			b.Fatal(err)
		}
		lf := r.Bert.ByScen[experiments.ScenLocalFork]
		cr := r.Bert.ByScen[experiments.ScenCRIU]
		b.ReportMetric(float64(cr.Restore)/float64(lf.E2E), "criu-restore/localfork-x")
		b.ReportMetric(float64(cr.LocalPages)/float64(lf.LocalPages), "criu-mem-x")
	}
}

func BenchmarkFig6ColdStartAnatomy(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		var sum des.Time
		for _, row := range r.Rows {
			sum += row.StateInit
		}
		b.ReportMetric(sum.Millis()/float64(len(r.Rows)), "state-init-ms")
		b.ReportMetric(p.ContainerCreate.Millis(), "container-ms")
	}
}

func BenchmarkFig7aColdStart(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureAll(p, benchSpecs(), experiments.AllScenarios)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Fig7Result{Measurements: ms}
		s := r.Summary()
		b.ReportMetric(s.CRIUOverCXLfork, "criu/cxlfork-x")
		b.ReportMetric(s.MitosisOverCXLfork, "mitosis/cxlfork-x")
		b.ReportMetric(s.CXLforkOverLocal, "cxlfork/localfork-x")
	}
}

func BenchmarkFig7bMemory(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureAll(p, benchSpecs(), experiments.AllScenarios)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Fig7Result{Measurements: ms}
		s := r.Summary()
		b.ReportMetric(100*s.MemCXLforkOverCold, "cxlfork-mem-%of-cold")
		b.ReportMetric(100*s.MemSavedOverCRIU, "saved-vs-criu-%")
	}
}

func BenchmarkFig8Tiering(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureAll(p, benchSpecs(),
			[]experiments.Scenario{experiments.ScenCXLfork, experiments.ScenCXLforkMoA, experiments.ScenCXLforkHT})
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Fig8Result{Measurements: ms}
		s := r.Summary()
		b.ReportMetric(-100*s.MoAWarmSpeedup, "moa-warm-%")
		b.ReportMetric(100*s.MoAMemGrowth, "moa-mem-%")
	}
}

func BenchmarkFig9Sensitivity(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		// Report Bert's warm penalty at the prototype latency.
		for _, pt := range r.Points {
			if pt.Function == "Bert" && pt.CXLLatency == 400*des.Nanosecond {
				b.ReportMetric(pt.WarmRel, "bert-warm-400ns-x")
			}
		}
	}
}

// fig10Bench runs the porter comparison at one memory fraction.
func fig10Bench(b *testing.B, frac float64) {
	p := experiments.ExpParams()
	cfg := experiments.DefaultFig10Config()
	cfg.Duration = 20 * des.Second
	cfg.MemoryFractions = []float64{frac}
	cfg.Functions = []string{"Float", "Json", "Rnn", "Bert"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var criuP99, cxlP99 des.Time
		for _, run := range r.Runs {
			switch run.Design {
			case experiments.DesignCRIU:
				criuP99 = run.P99
			case experiments.DesignCXLfork:
				cxlP99 = run.P99
			}
		}
		if criuP99 > 0 {
			b.ReportMetric(float64(cxlP99)/float64(criuP99), "cxlfork-p99/criu")
		}
	}
}

func BenchmarkFig10Porter(b *testing.B)          { fig10Bench(b, 1.0) }
func BenchmarkFig10cMemoryPressure(b *testing.B) { fig10Bench(b, 0.25) }

func BenchmarkCheckpoint(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureAll(p, benchSpecs(),
			[]experiments.Scenario{experiments.ScenCRIU, experiments.ScenMitosis, experiments.ScenCXLfork})
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.CkptResult{Measurements: ms}
		criuX, cxlX := r.Summary()
		b.ReportMetric(criuX, "criu/mitosis-x")
		b.ReportMetric(cxlX, "cxlfork/mitosis-x")
	}
}

func BenchmarkFaultCosts(b *testing.B) {
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		fc, err := experiments.Faults(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fc.CoWCXL, "cow-cxl-us")
		b.ReportMetric(fc.AnonFault, "anon-us")
	}
}

// ---- Ablations (DESIGN.md §5) ----

// ablationEnv checkpoints Rnn (hundreds of VMAs, mid footprint) once.
func ablationEnv(b *testing.B) (*cluster.Cluster, *core.Mechanism, rfork.Image, faas.Spec) {
	b.Helper()
	p := experiments.ExpParams()
	spec, _ := faas.ByName("Rnn")
	c, err := experiments.NewEnv(p, spec)
	if err != nil {
		b.Fatal(err)
	}
	in, err := faas.NewInstance(c.Node(0), spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := in.ColdInit(); err != nil {
		b.Fatal(err)
	}
	// Shape A/D to steady state before checkpointing (§5).
	if _, err := in.Invoke(nil); err != nil {
		b.Fatal(err)
	}
	in.Task.MM.PT.ClearABits()
	in.Task.MM.PT.ClearDirtyBits()
	if err := in.Warmup(15, nil); err != nil {
		b.Fatal(err)
	}
	mech := core.New(c.Dev)
	img, err := mech.Checkpoint(in.Task, "ablation")
	if err != nil {
		b.Fatal(err)
	}
	return c, mech, img, spec
}

// restoreLatency measures one restore's virtual latency on node 1.
func restoreLatency(b *testing.B, c *cluster.Cluster, mech *core.Mechanism, img rfork.Image, opts rfork.Options) des.Time {
	b.Helper()
	t0 := c.Eng.Now()
	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, opts); err != nil {
		b.Fatal(err)
	}
	lat := c.Eng.Now() - t0
	c.Node(1).Exit(child)
	return lat
}

func BenchmarkAblationLeafAttach(b *testing.B) {
	c, mech, img, _ := ablationEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attach := restoreLatency(b, c, mech, img, rfork.Options{NoDirtyPrefetch: true})
		naive := restoreLatency(b, c, mech, img, rfork.Options{NoDirtyPrefetch: true, NaivePTCopy: true})
		b.ReportMetric(attach.Millis(), "attach-ms")
		b.ReportMetric(naive.Millis(), "naive-copy-ms")
		b.ReportMetric(float64(naive)/float64(attach), "naive/attach-x")
	}
}

func BenchmarkAblationDirtyPrefetch(b *testing.B) {
	c, mech, img, spec := ablationEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// With prefetch: stores to parent-dirty pages are fault-free.
		run := func(opts rfork.Options) des.Time {
			t0 := c.Eng.Now()
			child := c.Node(1).NewTask("clone")
			if err := mech.Restore(child, img, opts); err != nil {
				b.Fatal(err)
			}
			in := faas.Adopt(child, spec)
			if _, err := in.Invoke(nil); err != nil {
				b.Fatal(err)
			}
			d := c.Eng.Now() - t0
			in.Exit()
			return d
		}
		with := run(rfork.Options{})
		without := run(rfork.Options{NoDirtyPrefetch: true})
		b.ReportMetric(with.Millis(), "prefetch-ms")
		b.ReportMetric(without.Millis(), "cow-only-ms")
	}
}

func BenchmarkAblationFileMappings(b *testing.B) {
	// CXLfork checkpoints clean private file pages; CRIU re-faults them.
	// Compare the clones' file-fault time on first invocation.
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		spec, _ := faas.ByName("Rnn")
		fm, err := experiments.MeasureFunction(p, spec,
			[]experiments.Scenario{experiments.ScenCXLfork, experiments.ScenCRIU})
		if err != nil {
			b.Fatal(err)
		}
		cxl := fm.ByScen[experiments.ScenCXLfork]
		criu := fm.ByScen[experiments.ScenCRIU]
		b.ReportMetric(float64(cxl.Faults.Count(1)+cxl.Faults.Count(2)), "cxlfork-file-faults")
		b.ReportMetric(float64(criu.Faults.Count(1)+criu.Faults.Count(2)), "criu-file-faults")
	}
}

func BenchmarkAblationSyncPrefetch(b *testing.B) {
	// §4.3's rejected design: synchronously prefetching A-bit pages at
	// restore trades restore latency for fewer faults.
	c, mech, img, _ := ablationEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lazy := restoreLatency(b, c, mech, img, rfork.Options{Policy: rfork.HybridTiering})
		sync := restoreLatency(b, c, mech, img, rfork.Options{Policy: rfork.HybridTiering, SyncHotPrefetch: true})
		b.ReportMetric(lazy.Millis(), "lazy-restore-ms")
		b.ReportMetric(sync.Millis(), "sync-restore-ms")
	}
}

func BenchmarkAblationABitRefresh(b *testing.B) {
	// Hybrid tiering with stale (cleared) A bits fetches nothing local;
	// with steady-state bits it fetches the hot set.
	c, mech, img, spec := ablationEnv(b)
	ck := img.(*core.Checkpoint)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child := c.Node(1).NewTask("hot")
		if err := mech.Restore(child, img, rfork.Options{Policy: rfork.HybridTiering}); err != nil {
			b.Fatal(err)
		}
		in := faas.Adopt(child, spec)
		if _, err := in.Invoke(nil); err != nil {
			b.Fatal(err)
		}
		hotLocal := child.MM.ResidentLocalPages()
		in.Exit()

		cleared := ck.ClearABits()
		child2 := c.Node(1).NewTask("cold")
		if err := mech.Restore(child2, img, rfork.Options{Policy: rfork.HybridTiering}); err != nil {
			b.Fatal(err)
		}
		in2 := faas.Adopt(child2, spec)
		if _, err := in2.Invoke(nil); err != nil {
			b.Fatal(err)
		}
		coldLocal := child2.MM.ResidentLocalPages()
		in2.Exit()

		// Close the continuous-refresh loop (§4.3): an attached
		// (migrate-on-write) clone's page walks re-mark the hot set on
		// the shared checkpointed leaves for the next iteration.
		refresher := c.Node(0).NewTask("refresh")
		if err := mech.Restore(refresher, img, rfork.Options{NoDirtyPrefetch: true}); err != nil {
			b.Fatal(err)
		}
		in3 := faas.Adopt(refresher, spec)
		if _, err := in3.Invoke(nil); err != nil {
			b.Fatal(err)
		}
		in3.Exit()

		b.ReportMetric(float64(hotLocal), "hot-local-pages")
		b.ReportMetric(float64(coldLocal), "stale-local-pages")
		b.ReportMetric(float64(cleared), "cleared-a-bits")
	}
}

func BenchmarkAblationGhostContainers(b *testing.B) {
	// Ghost containers vs fresh container creation on the porter's
	// cold-start path.
	p := experiments.ExpParams()
	spec, _ := faas.ByName("Float")
	ms, err := experiments.MeasureAll(p, []faas.Spec{spec}, experiments.AllScenarios)
	if err != nil {
		b.Fatal(err)
	}
	profiles := experiments.BuildProfiles(ms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := func(disable bool) des.Time {
			c := cluster.MustNew(p, 2)
			po := porter.New(c, porter.Config{
				Mechanism:         core.New(c.Dev),
				Profiles:          profiles,
				GhostsPerFunction: 4, // pool covers the whole burst
				DisableGhosts:     disable,
				Seed:              1,
			})
			if err := po.Setup([]faas.Spec{spec}); err != nil {
				b.Fatal(err)
			}
			// A burst of 8 simultaneous arrivals forces cold spawns.
			var reqs []azure.Request
			for j := 0; j < 8; j++ {
				reqs = append(reqs, azure.Request{At: 0, Function: "Float"})
			}
			res := po.Run(reqs)
			return res.Overall.P99()
		}
		with := run(false)
		without := run(true)
		b.ReportMetric(with.Millis(), "ghost-p99-ms")
		b.ReportMetric(without.Millis(), "no-ghost-p99-ms")
	}
}

// laneBench runs the lane sweep once per iteration and reports the
// per-page virtual costs at the given lane count; the cxlbench command
// persists the same numbers to BENCH_PR2.json for CI regression diffs.
func laneBench(b *testing.B, lanes int) {
	p := experiments.ExpParams()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CheckpointAfter = 2
	for i := 0; i < b.N; i++ {
		r, err := experiments.LaneSweep(p, "Float", []int{lanes})
		if err != nil {
			b.Fatal(err)
		}
		pt := r.Points[0]
		b.ReportMetric(pt.CheckpointNsPerPage(), "ckpt-ns/page")
		b.ReportMetric(pt.RestoreNsPerPage(), "restore-ns/page")
		b.ReportMetric(float64(pt.DedupBytesSaved>>20), "dedup-saved-mb")
	}
}

func BenchmarkLaneCheckpoint1(b *testing.B) { laneBench(b, 1) }
func BenchmarkLaneCheckpoint2(b *testing.B) { laneBench(b, 2) }
func BenchmarkLaneCheckpoint4(b *testing.B) { laneBench(b, 4) }
func BenchmarkLaneCheckpoint8(b *testing.B) { laneBench(b, 8) }

func BenchmarkScaleDedup(b *testing.B) {
	// Extension experiment: cluster-wide deduplication vs clone count.
	p := experiments.ExpParams()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scale(p, "Rnn", 4, []int{8})
		if err != nil {
			b.Fatal(err)
		}
		pt := r.Points[0]
		b.ReportMetric(float64(pt.CXLforkLocalMB), "cxlfork-local-mb")
		b.ReportMetric(float64(pt.CRIULocalMB), "criu-local-mb")
		b.ReportMetric(pt.RestoreMean.Millis(), "restore-ms")
	}
}

func BenchmarkWorkflowTransport(b *testing.B) {
	// §8 extension: by-value vs by-reference payload passing.
	p := experiments.ExpParams()
	mk := func() *cluster.Cluster { return cluster.MustNew(p, 2) }
	for i := 0; i < b.N; i++ {
		bv, br, err := workflow.Compare(mk, 4, 4096) // 16 MB payload
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bv.Latency.Millis(), "by-value-ms")
		b.ReportMetric(br.Latency.Millis(), "by-ref-ms")
	}
}
