package cxlfork

import (
	"strings"
	"testing"
	"time"
)

// xrayWorkload is a small replay that still exercises every porter
// request class (warm starts, fork restores, scratch colds).
func xrayWorkload() Workload {
	return Workload{
		RPS:       40,
		Duration:  3 * time.Second,
		Functions: []string{"Json", "Cnn"},
		KeepAlive: 100 * time.Millisecond,
	}
}

// TestRunWorkloadXRayObservational pins the facade-level neutrality
// contract: Config.XRay attaches a blame report to the run without
// changing the simulated results, so the report fingerprint matches a
// plain run — and a second attributed run renders the report
// byte-identically.
func TestRunWorkloadXRayObservational(t *testing.T) {
	wl := xrayWorkload()
	plain, err := RunWorkload(smallConfig(), wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.XRay != nil {
		t.Fatal("XRay report present without Config.XRay")
	}

	cfg := smallConfig()
	cfg.XRay = true
	a, err := RunWorkload(cfg, wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != plain.Fingerprint {
		t.Fatalf("attribution perturbed the run: %s != %s", a.Fingerprint, plain.Fingerprint)
	}
	if a.XRay == nil || a.XRay.Requests == 0 {
		t.Fatalf("empty XRay report: %+v", a.XRay)
	}
	b, err := RunWorkload(cfg, wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.XRay.Text() != b.XRay.Text() || a.XRay.Fingerprint() != b.XRay.Fingerprint() {
		t.Fatal("attributed reruns rendered different reports")
	}
	// Porter-fed attribution decomposes exactly: no residual anywhere.
	for _, cb := range a.XRay.Classes {
		if cb.ResidualNS != 0 {
			t.Fatalf("class %s carries residual %d", cb.Class, cb.ResidualNS)
		}
	}
}

// TestRunWorkloadSinkFailureKeepsFingerprint is the end-to-end pin for
// the telemetry sink hardening: a panicking OnSample consumer loses its
// stream but must not change what was simulated.
func TestRunWorkloadSinkFailureKeepsFingerprint(t *testing.T) {
	wl := xrayWorkload()
	plain, err := RunWorkload(smallConfig(), wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	broken, err := RunWorkload(smallConfig(), wl, &RunOptions{
		OnSample: func(Tick) {
			ticks++
			panic("broken sink")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 1 {
		t.Fatalf("panicking sink called %d times, want 1 (uninstalled after first panic)", ticks)
	}
	if broken.Fingerprint != plain.Fingerprint {
		t.Fatalf("sink panic perturbed the run: %s != %s", broken.Fingerprint, plain.Fingerprint)
	}
}

// TestSystemXRayReport covers the ops-facade path: attribution over
// trace spans needs both switches on, and then classifies the manual
// checkpoint/restore operations.
func TestSystemXRayReport(t *testing.T) {
	sys := NewSystem(smallConfig())
	if sys.XRayEnabled() {
		t.Fatal("XRay enabled by default")
	}
	if _, err := sys.XRayReport(); err == nil || !strings.Contains(err.Error(), "Config.XRay") {
		t.Fatalf("disabled XRayReport error = %v", err)
	}

	cfg := smallConfig()
	cfg.XRay = true
	sys = NewSystem(cfg)
	if !sys.XRayEnabled() {
		t.Fatal("XRay not enabled")
	}
	if _, err := sys.XRayReport(); err == nil || !strings.Contains(err.Error(), "Config.Trace") {
		t.Fatalf("untraced XRayReport error = %v", err)
	}

	cfg.Trace = true
	sys = NewSystem(cfg)
	fn := deployWarm(t, sys, "Json")
	ck, err := sys.Checkpoint(fn, CXLfork, "xr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Restore(1, ck, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	r, err := sys.XRayReport()
	if err != nil {
		t.Fatal(err)
	}
	if r.Class("op/checkpoint") == nil || r.Class("op/restore") == nil {
		t.Fatalf("span-derived classes missing:\n%s", r.Text())
	}
}
