// Package cxlfork is a full-system reproduction of "CXLfork: Fast
// Remote Fork over CXL Fabrics" (ASPLOS 2025) as a deterministic
// simulation: a cluster of OS instances sharing a CXL memory device, a
// remote-fork interface with three implementations (CXLfork, CRIU-CXL,
// Mitosis-CXL), tiering policies, a serverless workload suite, and the
// CXLporter autoscaler.
//
// This package is the public facade. Virtual time is exposed as
// time.Duration (the simulation runs in virtual nanoseconds; nothing
// here touches the wall clock). A typical session:
//
//	sys := cxlfork.NewSystem(cxlfork.DefaultConfig())
//	fn, _ := sys.DeployFunction(0, "Bert")   // cold start on node 0
//	fn.Warmup(16)                            // JIT steady state
//	ck, _ := sys.Checkpoint(fn, cxlfork.CXLfork, "bert-v1")
//	clone, _ := sys.Restore(1, ck, cxlfork.RestoreOptions{})
//	lat, _ := clone.Invoke()                 // near-warm on node 1
//
// The internal packages (see DESIGN.md) expose the full substrate for
// experiments; cmd/cxlsim regenerates every table and figure of the
// paper.
//
// Capacity management: Config.Capacity selects the checkpoint eviction
// policy and device watermarks, and System.CapacityStats reports live
// device occupancy with dedup-aware exclusive/shared byte splits (see
// DESIGN.md §10 and the -exp capacity sweep in EXPERIMENTS.md).
package cxlfork
