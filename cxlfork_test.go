package cxlfork

import (
	"testing"
	"time"
)

// smallConfig keeps facade tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NodeDRAM = 2 << 30
	cfg.CXLCapacity = 2 << 30
	return cfg
}

func deployWarm(t *testing.T, sys *System, name string) *Function {
	t.Helper()
	fn, err := sys.DeployFunction(0, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Warmup(16); err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestFunctionNames(t *testing.T) {
	names := FunctionNames()
	if len(names) != 10 {
		t.Fatalf("suite = %v", names)
	}
}

func TestDeployInvoke(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn, err := sys.DeployFunction(0, "Float")
	if err != nil {
		t.Fatal(err)
	}
	d, err := fn.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("zero invocation time")
	}
	if fn.ResidentLocalBytes() == 0 {
		t.Fatal("no resident memory after cold start")
	}
	if sys.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
	fn.Exit()
	if _, err := sys.DeployFunction(0, "Nope"); err == nil {
		t.Fatal("unknown function deployed")
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Float")

	ck, err := sys.Checkpoint(fn, CXLfork, "float-v1")
	if err != nil {
		t.Fatal(err)
	}
	info := ck.Describe()
	if info.DataPages == 0 || info.VMAs == 0 || info.PageTableLeaves == 0 {
		t.Fatalf("info = %+v", info)
	}
	if ck.ParentLocalBytes() != 0 {
		t.Fatal("CXLfork checkpoint pinned parent memory")
	}
	fn.Exit() // parent may exit: checkpoint is decoupled

	t0 := sys.Now()
	clone, err := sys.Restore(1, ck, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	restoreLat := sys.Now() - t0
	if restoreLat > 20*time.Millisecond {
		t.Fatalf("restore took %v", restoreLat)
	}
	warm, err := clone.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if warm <= 0 {
		t.Fatal("no invocation time")
	}
	// Most state stays on CXL under migrate-on-write.
	if clone.ResidentCXLBytes() == 0 {
		t.Fatal("clone maps nothing from CXL")
	}
	if clone.ResidentLocalBytes() >= clone.ResidentCXLBytes() {
		t.Fatalf("local %d ≥ cxl %d under MoW",
			clone.ResidentLocalBytes(), clone.ResidentCXLBytes())
	}
	clone.Exit()
	ck.Release()
	if sys.CXLMemoryUsed() != 0 {
		t.Fatalf("device holds %d bytes after release", sys.CXLMemoryUsed())
	}
}

func TestAllMechanisms(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Json")
	for _, mech := range []MechanismKind{CXLfork, CRIUCXL, MitosisCXL} {
		ck, err := sys.Checkpoint(fn, mech, "json-"+mech.String())
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		clone, err := sys.Restore(1, ck, RestoreOptions{})
		if err != nil {
			t.Fatalf("%v restore: %v", mech, err)
		}
		if _, err := clone.Invoke(); err != nil {
			t.Fatalf("%v invoke: %v", mech, err)
		}
		clone.Exit()
		ck.Release()
	}
	if MitosisCXL.String() != "Mitosis-CXL" || CRIUCXL.String() != "CRIU-CXL" {
		t.Fatal("mechanism names wrong")
	}
}

func TestMitosisPinsParentMemory(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Float")
	ck, err := sys.Checkpoint(fn, MitosisCXL, "m1")
	if err != nil {
		t.Fatal(err)
	}
	if ck.ParentLocalBytes() == 0 {
		t.Fatal("Mitosis checkpoint pins no parent memory")
	}
	if ck.CXLBytes() != 0 {
		t.Fatal("Mitosis checkpoint on the device")
	}
	ck.Release()
}

func TestTieringPolicies(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Float")
	ck, _ := sys.Checkpoint(fn, CXLfork, "f1")

	mow, err := sys.Restore(1, ck, RestoreOptions{Policy: MigrateOnWrite})
	if err != nil {
		t.Fatal(err)
	}
	moa, err := sys.Restore(1, ck, RestoreOptions{Policy: MigrateOnAccess})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mow.Invoke(); err != nil {
		t.Fatal(err)
	}
	if _, err := moa.Invoke(); err != nil {
		t.Fatal(err)
	}
	if moa.ResidentLocalBytes() <= mow.ResidentLocalBytes() {
		t.Fatalf("MoA local %d ≤ MoW local %d",
			moa.ResidentLocalBytes(), mow.ResidentLocalBytes())
	}
	if moa.ResidentCXLBytes() != 0 {
		t.Fatal("MoA left CXL mappings")
	}
	counts := moa.FaultCounts()
	if counts["moa"] == 0 {
		t.Fatalf("fault counts = %v", counts)
	}
}

func TestABitInterface(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Float")
	ck, _ := sys.Checkpoint(fn, CXLfork, "f1")
	n, err := ck.ClearAccessBits()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("steady-state checkpoint had no A bits")
	}
	ckCriu, _ := sys.Checkpoint(fn, CRIUCXL, "f2")
	if _, err := ckCriu.ClearAccessBits(); err == nil {
		t.Fatal("CRIU exposed an A-bit interface")
	}
}

func TestLocalFork(t *testing.T) {
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "Float")
	before := sys.NodeMemoryUsed(0)
	child, err := fn.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NodeMemoryUsed(0) - before; got != 0 {
		t.Fatalf("fork copied %d bytes", got)
	}
	if _, err := child.Invoke(); err != nil {
		t.Fatal(err)
	}
	child.Exit()
}

func TestRestoreLatencyOrdering(t *testing.T) {
	// The paper's core claim end-to-end through the public API: CXLfork
	// restores faster than Mitosis, which restores faster than CRIU.
	sys := NewSystem(smallConfig())
	fn := deployWarm(t, sys, "HTML")
	lat := make(map[MechanismKind]time.Duration)
	for _, mech := range []MechanismKind{CXLfork, CRIUCXL, MitosisCXL} {
		ck, err := sys.Checkpoint(fn, mech, "h-"+mech.String())
		if err != nil {
			t.Fatal(err)
		}
		t0 := sys.Now()
		clone, err := sys.Restore(1, ck, RestoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lat[mech] = sys.Now() - t0
		clone.Exit()
		ck.Release()
	}
	if !(lat[CXLfork] < lat[MitosisCXL] && lat[MitosisCXL] < lat[CRIUCXL]) {
		t.Fatalf("restore ordering: %v", lat)
	}
}

func TestAutoscalerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("autoscaler calibration is slow")
	}
	sys := NewSystem(smallConfig())
	res, err := sys.RunAutoscaler(AutoscalerConfig{
		Mechanism:      CXLfork,
		DynamicTiering: true,
		Functions:      []string{"Float", "Json"},
		RPS:            40,
		Duration:       5 * time.Second,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.P99 == 0 {
		t.Fatalf("results = %+v", res)
	}
	if res.P50 > res.P99 {
		t.Fatal("P50 > P99")
	}
	if len(res.PerFunctionP99) == 0 {
		t.Fatal("no per-function percentiles")
	}
}

func TestWorkflowChain(t *testing.T) {
	sys := NewSystem(smallConfig())
	bv, err := sys.RunWorkflowChain(3, 4<<20, PassByValue)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(smallConfig())
	br, err := sys2.RunWorkflowChain(3, 4<<20, PassByReference)
	if err != nil {
		t.Fatal(err)
	}
	if br.LocalBytesCopied != 0 {
		t.Fatalf("by-reference copied %d bytes", br.LocalBytesCopied)
	}
	if bv.LocalBytesCopied == 0 {
		t.Fatal("by-value copied nothing")
	}
	if br.Latency >= bv.Latency {
		t.Fatalf("by-reference %v not faster than by-value %v", br.Latency, bv.Latency)
	}
	if _, err := sys.RunWorkflowChain(1, 1<<20, PassByValue); err == nil {
		t.Fatal("degenerate chain accepted")
	}
}

// TestWorkersAreResultNeutral is the facade-level determinism contract
// of DESIGN.md §13: Config.Workers fans simulation legs out to
// goroutines but must not change any observable result.
func TestWorkersAreResultNeutral(t *testing.T) {
	run := func(workers int) (time.Duration, int64, int64) {
		cfg := smallConfig()
		cfg.Workers = workers
		sys := NewSystem(cfg)
		fn := deployWarm(t, sys, "Float")
		ck, err := sys.Checkpoint(fn, CXLfork, "float-w")
		if err != nil {
			t.Fatal(err)
		}
		fn.Exit()
		clone, err := sys.Restore(1, ck, RestoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := clone.Invoke()
		if err != nil {
			t.Fatal(err)
		}
		return d, clone.ResidentLocalBytes(), clone.ResidentCXLBytes()
	}
	d1, l1, c1 := run(1)
	for _, w := range []int{2, 8} {
		d, l, c := run(w)
		if d != d1 || l != l1 || c != c1 {
			t.Fatalf("workers=%d diverged: %v/%d/%d vs %v/%d/%d", w, d, l, c, d1, l1, c1)
		}
	}
}
