package cxlfork

import (
	"testing"
	"time"
)

// TestCapacityConfigMapsToParams checks the Capacity block reaches the
// internal parameter set and rejects nothing silently: the zero value
// keeps defaults, and explicit fields override them.
func TestCapacityConfigMapsToParams(t *testing.T) {
	def := Config{}.params()
	if def.EvictPolicy != "costbenefit" || def.CXLHighWatermark != 0.90 {
		t.Fatalf("unexpected defaults: policy=%q high=%v", def.EvictPolicy, def.CXLHighWatermark)
	}

	cfg := smallConfig()
	cfg.Capacity = CapacityConfig{
		EvictPolicy:   "lru",
		HighWatermark: 0.80,
		LowWatermark:  0.60,
		ReclaimPeriod: 250 * time.Millisecond,
	}
	p := cfg.params()
	if p.EvictPolicy != "lru" {
		t.Fatalf("EvictPolicy = %q", p.EvictPolicy)
	}
	if p.CXLHighWatermark != 0.80 || p.CXLLowWatermark != 0.60 {
		t.Fatalf("watermarks = %v/%v", p.CXLHighWatermark, p.CXLLowWatermark)
	}
	if time.Duration(p.CXLReclaimPeriod) != 250*time.Millisecond {
		t.Fatalf("ReclaimPeriod = %v", time.Duration(p.CXLReclaimPeriod))
	}
	// The overridden config still boots.
	NewSystem(cfg)
}

// TestCapacityStats checks the exclusive/shared occupancy breakdown:
// empty device reports zero; one checkpoint is fully exclusive; a dedup
// twin of the same function converts most data frames to shared; and
// the components always sum to the device's used bytes.
func TestCapacityStats(t *testing.T) {
	sys := NewSystem(smallConfig())

	if st := sys.CapacityStats(); st.Checkpoints != 0 || st.UsedBytes != 0 {
		t.Fatalf("non-empty stats on fresh system: %+v", st)
	}

	fn := deployWarm(t, sys, "Float")
	ck1, err := sys.Checkpoint(fn, CXLfork, "cap-1")
	if err != nil {
		t.Fatal(err)
	}
	st1 := sys.CapacityStats()
	if st1.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", st1.Checkpoints)
	}
	if st1.SharedBytes != 0 {
		t.Fatalf("single image reports %d shared bytes", st1.SharedBytes)
	}
	if st1.ExclusiveBytes == 0 || st1.MetaBytes == 0 {
		t.Fatalf("empty breakdown: %+v", st1)
	}
	if sum := st1.MetaBytes + st1.ExclusiveBytes + st1.SharedBytes; sum != st1.UsedBytes {
		t.Fatalf("breakdown sums to %d, used = %d", sum, st1.UsedBytes)
	}
	if u := st1.Utilization(); u <= 0 || u >= 1 {
		t.Fatalf("Utilization = %v", u)
	}

	// A second checkpoint of the same steady state dedups against the
	// first: its data frames become shared between the two images.
	ck2, err := sys.Checkpoint(fn, CXLfork, "cap-2")
	if err != nil {
		t.Fatal(err)
	}
	st2 := sys.CapacityStats()
	if st2.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2", st2.Checkpoints)
	}
	if st2.SharedBytes == 0 {
		t.Fatal("dedup twins report no shared bytes")
	}
	if st2.ExclusiveBytes >= st1.ExclusiveBytes {
		t.Fatalf("exclusive bytes did not shrink under sharing: %d -> %d",
			st1.ExclusiveBytes, st2.ExclusiveBytes)
	}
	if sum := st2.MetaBytes + st2.ExclusiveBytes + st2.SharedBytes; sum != st2.UsedBytes {
		t.Fatalf("breakdown sums to %d, used = %d", sum, st2.UsedBytes)
	}

	// Releasing the twin promotes the shared frames back to exclusive.
	ck2.Release()
	st3 := sys.CapacityStats()
	if st3.Checkpoints != 1 || st3.SharedBytes != 0 {
		t.Fatalf("after twin release: %+v", st3)
	}
	ck1.Release()
	if st := sys.CapacityStats(); st.UsedBytes != 0 {
		t.Fatalf("device not empty after last release: %+v", st)
	}
	fn.Exit()
}
