package cxlfork

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// traceScenario runs deploy → warmup → checkpoint → restore → invoke
// with tracing on (optionally with an injected checkpoint fault and
// retry) and returns the Chrome trace bytes.
func traceScenario(t *testing.T, lanes int, seed int64, fault bool) []byte {
	t.Helper()
	cfg := smallConfig()
	cfg.Trace = true
	cfg.Seed = seed
	cfg.CheckpointLanes = lanes
	cfg.RestoreLanes = lanes
	sys := NewSystem(cfg)
	fn := deployWarm(t, sys, "Float")
	if fault {
		sys.InjectFault(FaultRule{Kind: DeviceFull, Step: StepCheckpointVMA, Node: AnyNode})
		if _, err := sys.Checkpoint(fn, CXLfork, "doomed"); err == nil {
			t.Fatal("injected checkpoint fault did not fire")
		}
	}
	ck, err := sys.Checkpoint(fn, CXLfork, "golden")
	if err != nil {
		t.Fatal(err)
	}
	clone, err := sys.Restore(1, ck, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clone.Invoke(); err != nil {
		t.Fatal(err)
	}
	if n := sys.TraceDropped(); n != 0 {
		t.Fatalf("%d spans dropped", n)
	}
	var buf bytes.Buffer
	if err := sys.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraceDeterminism replays the same seeded scenario twice for
// each lane count, with and without an injected fault: the Chrome trace
// must come out byte-identical. The trace is a pure function of the
// simulation, and the simulation is a pure function of its seed.
func TestGoldenTraceDeterminism(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		for _, fault := range []bool{false, true} {
			t.Run(fmt.Sprintf("lanes=%d/fault=%v", lanes, fault), func(t *testing.T) {
				a := traceScenario(t, lanes, 7, fault)
				b := traceScenario(t, lanes, 7, fault)
				if !bytes.Equal(a, b) {
					t.Fatalf("same seed, different traces (%d vs %d bytes)", len(a), len(b))
				}
			})
		}
	}
}

// TestGoldenTraceSensitive proves the determinism test is not vacuous:
// changing the lane count changes the recorded pipeline schedule.
func TestGoldenTraceSensitive(t *testing.T) {
	a := traceScenario(t, 1, 7, false)
	b := traceScenario(t, 4, 7, false)
	if bytes.Equal(a, b) {
		t.Fatal("1-lane and 4-lane scenarios produced identical traces")
	}
}

// TestTracingIsObservationallyNeutral runs the identical scenario with
// tracing on and off: every simulated outcome — the virtual clock, the
// clone's invoke latency, memory occupancy, fault counts — must match
// exactly. The tracer records time; it must never spend it.
func TestTracingIsObservationallyNeutral(t *testing.T) {
	type outcome struct {
		now       time.Duration
		invoke    time.Duration
		localMem  int64
		cxlMem    int64
		ckBytes   int64
		faultKeys string
	}
	run := func(traced bool) outcome {
		cfg := smallConfig()
		cfg.Trace = traced
		cfg.CheckpointLanes = 4
		cfg.RestoreLanes = 4
		sys := NewSystem(cfg)
		fn := deployWarm(t, sys, "Float")
		ck, err := sys.Checkpoint(fn, CXLfork, "neutral")
		if err != nil {
			t.Fatal(err)
		}
		clone, err := sys.Restore(1, ck, RestoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lat, err := clone.Invoke()
		if err != nil {
			t.Fatal(err)
		}
		var faults []string
		for k, v := range clone.FaultCounts() {
			faults = append(faults, fmt.Sprintf("%s=%d", k, v))
		}
		return outcome{
			now:       sys.Now(),
			invoke:    lat,
			localMem:  sys.NodeMemoryUsed(1),
			cxlMem:    sys.CXLMemoryUsed(),
			ckBytes:   ck.CXLBytes(),
			faultKeys: strings.Join(sortStrings(faults), ","),
		}
	}
	off, on := run(false), run(true)
	if off != on {
		t.Fatalf("tracing changed simulated outcomes:\n off: %+v\n  on: %+v", off, on)
	}
}

func sortStrings(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// TestTraceAccessorsDisabled pins the disabled-tracer facade surface:
// WriteTrace refuses, the phase table is nil, and counters read zero.
func TestTraceAccessorsDisabled(t *testing.T) {
	sys := NewSystem(smallConfig())
	if sys.TraceEnabled() {
		t.Fatal("tracing enabled by default")
	}
	if err := sys.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace succeeded with tracing disabled")
	}
	if sys.TracePhases() != nil || sys.TraceEventCount() != 0 || sys.TraceDropped() != 0 {
		t.Fatal("disabled tracer accessors returned non-zero state")
	}
}

// TestTracePhasesMatchTrace cross-checks the facade's phase table
// against the raw event stream: counts and totals must agree, and the
// table must be sorted by phase name.
func TestTracePhasesMatchTrace(t *testing.T) {
	cfg := smallConfig()
	cfg.Trace = true
	sys := NewSystem(cfg)
	fn := deployWarm(t, sys, "Float")
	ck, err := sys.Checkpoint(fn, CXLfork, "phases")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Restore(1, ck, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	phases := sys.TracePhases()
	if len(phases) == 0 {
		t.Fatal("no phases recorded")
	}
	var total time.Duration
	for i, ph := range phases {
		if i > 0 && phases[i-1].Phase >= ph.Phase {
			t.Fatalf("phase table not sorted: %q before %q", phases[i-1].Phase, ph.Phase)
		}
		if ph.Count <= 0 || ph.Total < 0 || ph.Max < ph.Mean {
			t.Errorf("implausible phase row %+v", ph)
		}
		if strings.HasPrefix(ph.Phase, "op/") {
			total += ph.Total
		}
	}
	if total <= 0 || total > sys.Now() {
		t.Fatalf("op spans total %v, clock at %v", total, sys.Now())
	}
}
